#include "dsl/track_builder.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "geometry/iou.h"

namespace fixy {

namespace {

// Union-find over observation indices within one frame.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// The box used to represent a bundle when matching across frames: prefer a
// model prediction (model boxes exist in every application of Section 7),
// otherwise the first observation.
const geom::Box3d& RepresentativeBox(const ObservationBundle& bundle) {
  const Observation* model = bundle.FindBySource(ObservationSource::kModel);
  if (model != nullptr) return model->box;
  return bundle.observations.front().box;
}

// Groups one frame's observations into bundles via the bundler relation.
std::vector<ObservationBundle> BundleFrame(const Frame& frame,
                                           const Bundler& bundler) {
  const auto& observations = frame.observations;
  DisjointSet components(observations.size());
  for (size_t i = 0; i < observations.size(); ++i) {
    for (size_t j = i + 1; j < observations.size(); ++j) {
      if (bundler.IsAssociated(observations[i], observations[j])) {
        components.Union(i, j);
      }
    }
  }
  // Collect members per component root, preserving observation order.
  std::vector<ObservationBundle> bundles;
  std::vector<int> root_to_bundle(observations.size(), -1);
  for (size_t i = 0; i < observations.size(); ++i) {
    const size_t root = components.Find(i);
    if (root_to_bundle[root] < 0) {
      root_to_bundle[root] = static_cast<int>(bundles.size());
      ObservationBundle bundle;
      bundle.frame_index = frame.index;
      bundle.timestamp = frame.timestamp;
      bundle.ego_position = frame.ego_position;
      bundles.push_back(std::move(bundle));
    }
    bundles[static_cast<size_t>(root_to_bundle[root])].observations.push_back(
        observations[i]);
  }
  return bundles;
}

struct OpenTrack {
  Track track;
  int last_matched_frame = 0;
};

}  // namespace

TrackBuilder::TrackBuilder(TrackBuilderOptions options)
    : options_(std::move(options)) {
  if (options_.bundler == nullptr) {
    options_.bundler = std::make_shared<IouBundler>(0.5);
  }
}

Result<TrackSet> TrackBuilder::Build(const Scene& scene) const {
  FIXY_RETURN_IF_ERROR(scene.Validate());

  TrackSet result;
  result.scene_name = scene.name();

  std::vector<OpenTrack> open;
  TrackId next_track_id = 0;

  for (const Frame& frame : scene.frames()) {
    std::vector<ObservationBundle> bundles =
        BundleFrame(frame, *options_.bundler);

    // Candidate (track, bundle) pairs with IoU above the link threshold.
    struct Candidate {
      double iou;
      size_t track_index;
      size_t bundle_index;
    };
    std::vector<Candidate> candidates;
    for (size_t t = 0; t < open.size(); ++t) {
      const ObservationBundle& last = open[t].track.bundles().back();
      for (size_t b = 0; b < bundles.size(); ++b) {
        const double iou =
            geom::BevIou(RepresentativeBox(last), RepresentativeBox(bundles[b]));
        if (iou > options_.track_iou_threshold) {
          candidates.push_back({iou, t, b});
        }
      }
    }
    // Greedy best-IoU matching: take pairs in descending IoU, each track
    // and bundle used at most once.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.iou != b.iou) return a.iou > b.iou;
                if (a.track_index != b.track_index) {
                  return a.track_index < b.track_index;
                }
                return a.bundle_index < b.bundle_index;
              });
    std::vector<bool> track_used(open.size(), false);
    std::vector<bool> bundle_used(bundles.size(), false);
    for (const Candidate& c : candidates) {
      if (track_used[c.track_index] || bundle_used[c.bundle_index]) continue;
      track_used[c.track_index] = true;
      bundle_used[c.bundle_index] = true;
      open[c.track_index].track.AddBundle(std::move(bundles[c.bundle_index]));
      open[c.track_index].last_matched_frame = frame.index;
    }
    // Unmatched bundles start new tracks.
    for (size_t b = 0; b < bundles.size(); ++b) {
      if (bundle_used[b]) continue;
      OpenTrack fresh;
      fresh.track.set_id(next_track_id++);
      fresh.track.AddBundle(std::move(bundles[b]));
      fresh.last_matched_frame = frame.index;
      open.push_back(std::move(fresh));
    }
    // Close tracks that have not matched within the gap allowance.
    std::vector<OpenTrack> still_open;
    still_open.reserve(open.size());
    for (OpenTrack& t : open) {
      if (frame.index - t.last_matched_frame > options_.max_gap_frames) {
        result.tracks.push_back(std::move(t.track));
      } else {
        still_open.push_back(std::move(t));
      }
    }
    open = std::move(still_open);
  }
  for (OpenTrack& t : open) {
    result.tracks.push_back(std::move(t.track));
  }
  // Deterministic output order: by track id.
  std::sort(result.tracks.begin(), result.tracks.end(),
            [](const Track& a, const Track& b) { return a.id() < b.id(); });
  return result;
}

}  // namespace fixy
