#include "dsl/track_builder.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "geometry/iou.h"

namespace fixy {

namespace {

// Union-find over observation indices within one frame.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// The box used to represent a bundle when matching across frames: prefer a
// model prediction (model boxes exist in every application of Section 7),
// otherwise the first observation.
const geom::Box3d& RepresentativeBox(const ObservationBundle& bundle) {
  const Observation* model = bundle.FindBySource(ObservationSource::kModel);
  if (model != nullptr) return model->box;
  return bundle.observations.front().box;
}

// Groups the view's observations (`indices`, ascending frame-local
// indices) into bundles, given the associated pairs of the frame
// restricted to the view. Equivalent to running the bundler's relation
// over a frame that contains only the view's observations: the relation
// is evaluated per pair, so restricting the observation set restricts the
// association graph to its induced subgraph.
std::vector<ObservationBundle> BundleSubset(
    const Frame& frame, const std::vector<size_t>& indices,
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  const auto& observations = frame.observations;
  std::vector<int> local_of(observations.size(), -1);
  for (size_t k = 0; k < indices.size(); ++k) {
    local_of[indices[k]] = static_cast<int>(k);
  }
  DisjointSet components(indices.size());
  for (const auto& [i, j] : pairs) {
    components.Union(static_cast<size_t>(local_of[i]),
                     static_cast<size_t>(local_of[j]));
  }
  // Collect members per component root, preserving observation order.
  std::vector<ObservationBundle> bundles;
  std::vector<int> root_to_bundle(indices.size(), -1);
  for (size_t k = 0; k < indices.size(); ++k) {
    const size_t root = components.Find(k);
    if (root_to_bundle[root] < 0) {
      root_to_bundle[root] = static_cast<int>(bundles.size());
      ObservationBundle bundle;
      bundle.frame_index = frame.index;
      bundle.timestamp = frame.timestamp;
      bundle.ego_position = frame.ego_position;
      bundles.push_back(std::move(bundle));
    }
    bundles[static_cast<size_t>(root_to_bundle[root])].observations.push_back(
        observations[indices[k]]);
  }
  return bundles;
}

// Cross-frame linking state for one view: greedy best-IoU matching of a
// frame's bundles against the open tracks, identical for every view.
class TrackLinker {
 public:
  explicit TrackLinker(const TrackBuilderOptions& options)
      : options_(options) {}

  void AddFrame(const Frame& frame, std::vector<ObservationBundle> bundles) {
    // Candidate (track, bundle) pairs with IoU above the link threshold.
    struct Candidate {
      double iou;
      size_t track_index;
      size_t bundle_index;
    };
    std::vector<Candidate> candidates;
    for (size_t t = 0; t < open_.size(); ++t) {
      const ObservationBundle& last = open_[t].track.bundles().back();
      for (size_t b = 0; b < bundles.size(); ++b) {
        const double iou =
            geom::BevIou(RepresentativeBox(last), RepresentativeBox(bundles[b]));
        if (iou > options_.track_iou_threshold) {
          candidates.push_back({iou, t, b});
        }
      }
    }
    // Greedy best-IoU matching: take pairs in descending IoU, each track
    // and bundle used at most once.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.iou != b.iou) return a.iou > b.iou;
                if (a.track_index != b.track_index) {
                  return a.track_index < b.track_index;
                }
                return a.bundle_index < b.bundle_index;
              });
    std::vector<bool> track_used(open_.size(), false);
    std::vector<bool> bundle_used(bundles.size(), false);
    for (const Candidate& c : candidates) {
      if (track_used[c.track_index] || bundle_used[c.bundle_index]) continue;
      track_used[c.track_index] = true;
      bundle_used[c.bundle_index] = true;
      open_[c.track_index].track.AddBundle(std::move(bundles[c.bundle_index]));
      open_[c.track_index].last_matched_frame = frame.index;
    }
    // Unmatched bundles start new tracks.
    for (size_t b = 0; b < bundles.size(); ++b) {
      if (bundle_used[b]) continue;
      OpenTrack fresh;
      fresh.track.set_id(next_track_id_++);
      fresh.track.AddBundle(std::move(bundles[b]));
      fresh.last_matched_frame = frame.index;
      open_.push_back(std::move(fresh));
    }
    // Close tracks that have not matched within the gap allowance.
    std::vector<OpenTrack> still_open;
    still_open.reserve(open_.size());
    for (OpenTrack& t : open_) {
      if (frame.index - t.last_matched_frame > options_.max_gap_frames) {
        result_.tracks.push_back(std::move(t.track));
      } else {
        still_open.push_back(std::move(t));
      }
    }
    open_ = std::move(still_open);
  }

  TrackSet Finish(const std::string& scene_name) {
    for (OpenTrack& t : open_) {
      result_.tracks.push_back(std::move(t.track));
    }
    open_.clear();
    result_.scene_name = scene_name;
    // Deterministic output order: by track id.
    std::sort(result_.tracks.begin(), result_.tracks.end(),
              [](const Track& a, const Track& b) { return a.id() < b.id(); });
    return std::move(result_);
  }

 private:
  struct OpenTrack {
    Track track;
    int last_matched_frame = 0;
  };

  const TrackBuilderOptions& options_;
  std::vector<OpenTrack> open_;
  TrackId next_track_id_ = 0;
  TrackSet result_;
};

}  // namespace

const char* SceneViewToString(SceneView view) {
  switch (view) {
    case SceneView::kFull:
      return "full";
    case SceneView::kModelOnly:
      return "model-only";
  }
  return "unknown";
}

const TrackSet& AssociationViews::view(SceneView v) const {
  const std::optional<TrackSet>& tracks =
      v == SceneView::kFull ? full : model_only;
  FIXY_CHECK(tracks.has_value());
  return *tracks;
}

TrackBuilder::TrackBuilder(TrackBuilderOptions options)
    : options_(std::move(options)) {
  if (options_.bundler == nullptr) {
    options_.bundler = std::make_shared<IouBundler>(0.5);
  }
}

Result<TrackSet> TrackBuilder::Build(const Scene& scene) const {
  FIXY_ASSIGN_OR_RETURN(AssociationViews views,
                        BuildViews(scene, /*need_full=*/true,
                                   /*need_model_only=*/false));
  return std::move(*views.full);
}

Result<AssociationViews> TrackBuilder::BuildViews(const Scene& scene,
                                                  bool need_full,
                                                  bool need_model_only) const {
  FIXY_CHECK(need_full || need_model_only);
  FIXY_RETURN_IF_ERROR(scene.Validate());

  const Bundler& bundler = *options_.bundler;
  TrackLinker full_linker(options_);
  TrackLinker model_linker(options_);

  // Scratch buffers reused across frames.
  std::vector<size_t> all_indices;
  std::vector<size_t> model_indices;
  std::vector<std::pair<size_t, size_t>> pairs;
  std::vector<std::pair<size_t, size_t>> model_pairs;

  for (const Frame& frame : scene.frames()) {
    const auto& observations = frame.observations;
    model_indices.clear();
    for (size_t i = 0; i < observations.size(); ++i) {
      if (observations[i].source == ObservationSource::kModel) {
        model_indices.push_back(i);
      }
    }

    // One pairwise sweep per frame, shared by every view. When only the
    // model view is wanted, human-involving pairs are never evaluated.
    pairs.clear();
    if (need_full) {
      for (size_t i = 0; i < observations.size(); ++i) {
        for (size_t j = i + 1; j < observations.size(); ++j) {
          if (bundler.IsAssociated(observations[i], observations[j])) {
            pairs.emplace_back(i, j);
          }
        }
      }
    } else {
      for (size_t a = 0; a < model_indices.size(); ++a) {
        for (size_t b = a + 1; b < model_indices.size(); ++b) {
          if (bundler.IsAssociated(observations[model_indices[a]],
                                   observations[model_indices[b]])) {
            pairs.emplace_back(model_indices[a], model_indices[b]);
          }
        }
      }
    }

    if (need_full) {
      all_indices.resize(observations.size());
      std::iota(all_indices.begin(), all_indices.end(), 0);
      full_linker.AddFrame(frame, BundleSubset(frame, all_indices, pairs));
    }
    if (need_model_only) {
      const std::vector<std::pair<size_t, size_t>>* view_pairs = &pairs;
      if (need_full) {
        // Restrict the shared pair results to the model-model subgraph;
        // the sweep order preserves lexicographic pair order.
        model_pairs.clear();
        for (const auto& [i, j] : pairs) {
          if (observations[i].source == ObservationSource::kModel &&
              observations[j].source == ObservationSource::kModel) {
            model_pairs.emplace_back(i, j);
          }
        }
        view_pairs = &model_pairs;
      }
      model_linker.AddFrame(frame,
                            BundleSubset(frame, model_indices, *view_pairs));
    }
  }

  AssociationViews views;
  if (need_full) views.full = full_linker.Finish(scene.name());
  if (need_model_only) views.model_only = model_linker.Finish(scene.name());
  return views;
}

}  // namespace fixy
