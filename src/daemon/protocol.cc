#include "daemon/protocol.h"

#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"

namespace fixy::daemon {

const char* RequestKindToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kRank:
      return "rank";
    case RequestKind::kRankDataset:
      return "rank-dataset";
    case RequestKind::kLearn:
      return "learn";
    case RequestKind::kStatus:
      return "status";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

Result<RequestKind> RequestKindFromString(const std::string& name) {
  if (name == "rank") return RequestKind::kRank;
  if (name == "rank-dataset") return RequestKind::kRankDataset;
  if (name == "learn") return RequestKind::kLearn;
  if (name == "status") return RequestKind::kStatus;
  if (name == "shutdown") return RequestKind::kShutdown;
  return Status::InvalidArgument(
      "unknown request kind: " + name +
      " (expected rank|rank-dataset|learn|status|shutdown)");
}

json::Value RequestToJson(const Request& request) {
  json::Object object;
  object["id"] = json::Value(request.id);
  object["kind"] = json::Value(RequestKindToString(request.kind));
  object["data"] = json::Value(request.data_dir);
  object["scene_index"] = json::Value(request.scene_index);
  object["scene"] = json::Value(request.scene);
  json::Array apps;
  for (const std::string& app : request.apps) apps.emplace_back(app);
  object["apps"] = json::Value(std::move(apps));
  object["top"] = json::Value(request.top);
  object["deadline_ms"] = json::Value(request.deadline_ms);
  object["model_out"] = json::Value(request.model_out);
  return json::Value(std::move(object));
}

Result<Request> RequestFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  Request request;
  FIXY_ASSIGN_OR_RETURN(const std::string kind, value.GetString("kind"));
  FIXY_ASSIGN_OR_RETURN(request.kind, RequestKindFromString(kind));
  if (value.Find("id") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(const int64_t id, value.GetInt64("id"));
    if (id < 0) return Status::InvalidArgument("request id must be >= 0");
    request.id = static_cast<uint64_t>(id);
  }
  if (value.Find("data") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(request.data_dir, value.GetString("data"));
  }
  if (value.Find("scene_index") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(request.scene_index, value.GetInt64("scene_index"));
  }
  if (value.Find("scene") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(request.scene, value.GetString("scene"));
  }
  if (const json::Value* apps = value.Find("apps"); apps != nullptr) {
    if (!apps->is_array()) {
      return Status::InvalidArgument("request 'apps' must be an array");
    }
    for (const json::Value& app : apps->AsArray()) {
      if (!app.is_string()) {
        return Status::InvalidArgument(
            "request 'apps' entries must be strings");
      }
      request.apps.push_back(app.AsString());
    }
  }
  if (value.Find("top") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(const int64_t top, value.GetInt64("top"));
    if (top < 0) return Status::InvalidArgument("request top must be >= 0");
    request.top = static_cast<int>(top);
  }
  if (value.Find("deadline_ms") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(request.deadline_ms, value.GetInt64("deadline_ms"));
    if (request.deadline_ms < 0) {
      return Status::InvalidArgument("request deadline_ms must be >= 0");
    }
  }
  if (value.Find("model_out") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(request.model_out, value.GetString("model_out"));
  }
  return request;
}

json::Value ResponseToJson(const Response& response) {
  json::Object object;
  object["id"] = json::Value(response.id);
  object["code"] = json::Value(static_cast<int>(response.status.code()));
  object["error"] = json::Value(response.status.message());
  object["result"] = response.result;
  return json::Value(std::move(object));
}

Result<Response> ResponseFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("response body must be a JSON object");
  }
  Response response;
  FIXY_ASSIGN_OR_RETURN(const int64_t id, value.GetInt64("id"));
  if (id < 0) return Status::InvalidArgument("response id must be >= 0");
  response.id = static_cast<uint64_t>(id);
  FIXY_ASSIGN_OR_RETURN(const int64_t code, value.GetInt64("code"));
  if (code < 0 || code > static_cast<int64_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("response carries an unknown status code");
  }
  std::string message;
  if (value.Find("error") != nullptr) {
    FIXY_ASSIGN_OR_RETURN(message, value.GetString("error"));
  }
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  if (const json::Value* result = value.Find("result"); result != nullptr) {
    response.result = *result;
  }
  return response;
}

std::string EncodeRequestFrame(const Request& request) {
  return shard::EncodeFrame(shard::FrameType::kRequest,
                            json::Write(RequestToJson(request)));
}

std::string EncodeResponseFrame(const Response& response) {
  return shard::EncodeFrame(shard::FrameType::kResponse,
                            json::Write(ResponseToJson(response)));
}

void RecordDaemonMetricsSchema(const std::vector<std::string>& apps) {
  obs::Count("daemon.connections", 0);
  obs::Count("daemon.requests", 0);
  obs::Count("daemon.rejected", 0);
  obs::Count("daemon.errors", 0);
  obs::Count("daemon.dataset_reopens", 0);
  obs::Count("daemon.cache_refreshes", 0);
  obs::AddTimeNs("daemon.queue_wait", 0);
  obs::AddTimeNs("daemon.request", 0);
  obs::SetGauge("daemon.queue_depth", 0);
  for (const std::string& app : apps) {
    obs::AddTimeNs("daemon.rank." + app, 0);
  }
}

}  // namespace fixy::daemon
