// `fixy_cli watch`: a polling loop that keeps a dataset directory's FXB
// cache, learned model, and error rankings continuously in sync with the
// JSON sources on disk (DESIGN.md §14).
//
// Each cycle stats the sources (ExplainCacheStaleness — no content reads
// on the fast path), and when anything changed runs the incremental
// ladder: UpdateFxbCache re-encodes only the added/changed scenes, the
// changed scenes optionally fold into the learned model via
// Fixy::LearnIncremental (--learn-labels), and only the changed scenes
// re-rank. The amortized cost of "one scene changed" is therefore
// proportional to one scene, not the dataset.
//
// Failure semantics follow the repo's never-abort contract: a cycle that
// trips over a mid-edit dataset (corrupt JSON, vanished file, stale-again
// cache) records `watch.errors`, reports, and keeps polling — the next
// cycle retries from scratch. Watch exits only on the stop signal
// (stop_fd / SIGINT / SIGTERM) or after `max_cycles` polls.
#ifndef FIXY_DAEMON_WATCH_H_
#define FIXY_DAEMON_WATCH_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "obs/metrics.h"

namespace fixy::daemon {

struct WatchReport;

struct WatchOptions {
  /// Dataset directory to watch (must hold manifest.json).
  std::string data_dir;

  /// Learned model to rank with. Required.
  std::string model_path;

  /// Where --learn-labels saves the folded model after each update.
  /// Empty means overwrite `model_path`.
  std::string model_out;

  /// Applications to rank changed scenes with. Resolved against the
  /// engine's registry up front; empty means every registered app.
  std::vector<std::string> apps;

  /// Milliseconds between staleness polls.
  int poll_interval_ms = 1000;

  /// Stop after this many polls; 0 polls until the stop signal. Tests and
  /// scripted runs set this so the loop is bounded without signals.
  int max_cycles = 0;

  /// Fold each batch of added/changed scenes into the learned model
  /// (Fixy::LearnIncremental) before re-ranking, and save the model to
  /// `model_out`. Requires a model that carries sufficient statistics.
  bool learn_labels = false;

  /// Proposals printed per re-ranked scene.
  int top = 10;

  /// Rank-worker configuration for the per-update RankDataset call.
  /// fail_fast is forced off — watch always quarantines failing scenes.
  BatchOptions batch;

  /// Engine configuration (estimator, extra applications, ...).
  FixyOptions engine;

  /// Collect watch.* / io.fxb.* / rank.* metrics into the report.
  bool collect_metrics = false;

  /// When >= 0, a readable byte on this fd stops the loop at the next
  /// poll boundary (the poll sleep waits on it, so a stop interrupts the
  /// sleep immediately). The caller keeps ownership of the fd.
  int stop_fd = -1;

  /// Install SIGINT/SIGTERM handlers that trip an internal self-pipe
  /// (the daemon's stop machinery), so ^C ends the loop gracefully.
  /// Mutually composable with stop_fd: either source stops the loop.
  bool install_signal_handlers = false;

  /// Suppress the per-cycle progress lines (tests).
  bool quiet = false;

  /// Invoked on the watch thread after every completed cycle with the
  /// running totals. Lets embedders (and tests) react to loop progress
  /// without polling the filesystem; leave empty when not needed.
  std::function<void(const WatchReport&)> on_cycle;
};

/// What one WatchDataset run did, accumulated over every cycle.
struct WatchReport {
  size_t cycles = 0;          ///< polls executed
  size_t updates = 0;         ///< cycles that refreshed the cache
  size_t idle_cycles = 0;     ///< polls that found nothing changed
  size_t errors = 0;          ///< cycles that failed and were retried
  size_t rebuilds = 0;        ///< updates that fell back to a full build
  size_t scenes_encoded = 0;  ///< scene sections re-encoded from JSON
  size_t scenes_dropped = 0;  ///< scenes dropped from the cache
  size_t scenes_ranked = 0;   ///< changed scenes re-ranked
  size_t folds = 0;           ///< LearnIncremental folds applied
  /// Snapshot of every metric the run recorded (empty unless
  /// WatchOptions::collect_metrics).
  obs::PipelineMetrics metrics;
};

/// Runs the watch loop until stopped. Errors: only for unrecoverable
/// setup problems (missing dataset directory, unloadable model,
/// --learn-labels against a model without sufficient statistics, unknown
/// app); once the loop is running, per-cycle failures are counted and
/// retried, never returned.
Result<WatchReport> WatchDataset(const WatchOptions& options);

/// Records every watch.* counter and timer at zero on the calling
/// thread's collector, so watch metric snapshots carry a stable key set
/// whatever the run encountered.
void RecordWatchMetricsSchema();

}  // namespace fixy::daemon

#endif  // FIXY_DAEMON_WATCH_H_
