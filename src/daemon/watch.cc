#include "daemon/watch.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>
#endif

#include "common/macros.h"
#include "core/ranker.h"
#include "data/scene.h"
#include "io/fxb.h"
#include "obs/metrics.h"

namespace fixy::daemon {
namespace {

#if defined(__unix__) || defined(__APPLE__)

/// Write fd of the watch loop's stop pipe, for the signal handler. The
/// same self-pipe trick fixyd uses: the handler only writes one byte to a
/// non-blocking pipe (async-signal-safe), and the poll loop notices.
std::atomic<int> g_watch_stop_fd{-1};

void OnWatchStopSignal(int) {
  const int fd = g_watch_stop_fd.load(std::memory_order_relaxed);
  if (fd < 0) return;
  const char byte = 1;
  // A full pipe means a stop is already pending; dropping the byte is fine.
  (void)!::write(fd, &byte, 1);
}

/// RAII self-pipe + SIGINT/SIGTERM handlers; restores the previous
/// handlers and closes the pipe on destruction, so a bounded watch run
/// (--max-cycles) leaves the process's signal disposition untouched.
class SignalPipe {
 public:
  Status Install() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      return Status::IoError("pipe() failed for the watch stop pipe");
    }
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    // Both ends non-blocking: the handler must never block, and a drained
    // read must not hang the loop.
    ::fcntl(read_fd_, F_SETFL, O_NONBLOCK);
    ::fcntl(write_fd_, F_SETFL, O_NONBLOCK);
    g_watch_stop_fd.store(write_fd_, std::memory_order_relaxed);
    struct sigaction action {};
    action.sa_handler = OnWatchStopSignal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
    installed_ = true;
    return Status::Ok();
  }

  int read_fd() const { return read_fd_; }

  ~SignalPipe() {
    if (installed_) {
      ::sigaction(SIGINT, &old_int_, nullptr);
      ::sigaction(SIGTERM, &old_term_, nullptr);
      g_watch_stop_fd.store(-1, std::memory_order_relaxed);
    }
    if (read_fd_ >= 0) ::close(read_fd_);
    if (write_fd_ >= 0) ::close(write_fd_);
  }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
  bool installed_ = false;
};

/// Waits up to `timeout_ms` for either stop fd to become readable.
/// Returns true when a stop was signalled (the fds are left undrained —
/// stop is terminal). With no fds this is a plain sleep.
bool WaitForStop(int fd_a, int fd_b, int timeout_ms) {
  struct pollfd fds[2];
  nfds_t count = 0;
  if (fd_a >= 0) fds[count++] = {fd_a, POLLIN, 0};
  if (fd_b >= 0) fds[count++] = {fd_b, POLLIN, 0};
  if (count == 0) {
    if (timeout_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
    }
    return false;
  }
  const int ready = ::poll(fds, count, timeout_ms);
  if (ready <= 0) return false;  // timeout or EINTR: just poll again
  for (nfds_t i = 0; i < count; ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) return true;
  }
  return false;
}

#else  // non-POSIX: no signal pipe; --max-cycles bounds the loop.

class SignalPipe {
 public:
  Status Install() {
    return Status::Unimplemented(
        "watch signal handling requires a POSIX platform");
  }
  int read_fd() const { return -1; }
};

bool WaitForStop(int, int, int timeout_ms) {
  if (timeout_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
  }
  return false;
}

#endif

/// Mutable state threaded through the cycles.
struct WatchState {
  Fixy* fixy = nullptr;
  const WatchOptions* options = nullptr;
  std::vector<std::string> apps;
  BatchOptions batch;
  WatchReport* report = nullptr;
  obs::MetricsCollector* collector = nullptr;  // null when not collecting
  bool bootstrap = true;  ///< first cycle ranks everything once
};

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void Say(const WatchState& state, const char* format, ...) {
  if (state.options->quiet) return;
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::fflush(stdout);  // scripts tail watch output live
}

/// One poll: detect → update cache → fold labels → re-rank. Returns an
/// error only for failures worth retrying next cycle (mid-edit datasets,
/// raced caches); the caller counts them and keeps polling.
Status CycleOnce(WatchState& state) {
  const WatchOptions& options = *state.options;
  const std::string& dir = options.data_dir;

  // 1. Change detection: a stat-only pass over the sources. NotFound
  // means no cache yet — the first update is a full build.
  bool need_update = false;
  std::string why;
  Result<io::CacheStaleness> staleness = io::ExplainCacheStaleness(dir);
  if (staleness.ok()) {
    need_update = staleness->stale;
    why = staleness->Summary();
  } else if (staleness.status().code() == StatusCode::kNotFound) {
    need_update = true;
    why = "no cache yet";
  } else {
    return staleness.status();
  }

  if (!need_update && !state.bootstrap) {
    state.report->idle_cycles += 1;
    obs::Count("watch.idle");
    return Status::Ok();
  }

  // 2. Incremental cache refresh: only the added/changed scenes
  // re-encode; everything else is copied byte-for-byte.
  bool all_scenes = state.bootstrap;
  std::set<std::string> affected;
  if (need_update) {
    Say(state, "watch: change detected (%s)\n", why.c_str());
    const obs::StageTimer update_timer;
    FIXY_ASSIGN_OR_RETURN(const io::FxbUpdateReport update,
                          io::UpdateFxbCache(dir));
    obs::AddTimeNs("watch.update", update_timer.ElapsedNs());
    state.report->updates += 1;
    state.report->scenes_encoded += update.scenes_encoded;
    state.report->scenes_dropped += update.scenes_dropped;
    obs::Count("watch.updates");
    obs::Count("watch.scenes_encoded", update.scenes_encoded);
    obs::Count("watch.scenes_dropped", update.scenes_dropped);
    if (update.rebuilt) {
      state.report->rebuilds += 1;
      obs::Count("watch.rebuilds");
      all_scenes = true;
    }
    affected.insert(update.encoded_files.begin(), update.encoded_files.end());
    Say(state,
        "watch: cache refreshed — %zu scenes (%zu reused, %zu re-encoded, "
        "%zu dropped%s)\n",
        update.scenes_total, update.scenes_reused, update.scenes_encoded,
        update.scenes_dropped, update.rebuilt ? ", full rebuild" : "");
    if (!all_scenes && affected.empty()) {
      // Fingerprint-only refresh (touched-but-identical files): the cache
      // was resealed but no scene content changed, so nothing re-ranks.
      return Status::Ok();
    }
  }

  // 3. Decode the affected scenes from the refreshed cache. A cache that
  // reads stale again means the sources changed while we were updating —
  // retry next cycle rather than ranking a moving target.
  FIXY_ASSIGN_OR_RETURN(const io::FxbReader reader, io::OpenFreshCache(dir));
  Dataset delta;
  delta.name = reader.dataset_name();
  for (size_t i = 0; i < reader.scene_count(); ++i) {
    if (!all_scenes && affected.count(reader.sources()[i].file) == 0) {
      continue;
    }
    Result<Scene> scene = reader.DecodeScene(i);
    if (!scene.ok()) {
      obs::Count("watch.scene_failures");
      Say(state, "watch: SKIPPED %s: %s\n", reader.SceneNameHint(i).c_str(),
          scene.status().ToString().c_str());
      continue;
    }
    delta.scenes.push_back(std::move(*scene));
  }
  if (delta.scenes.empty()) return Status::Ok();

  // 4. Optionally fold the changed scenes' labels into the model. A fold
  // failure leaves the model untouched (LearnIncremental's contract), so
  // ranking below still runs against the previous model.
  if (options.learn_labels && !state.bootstrap) {
    const obs::StageTimer fold_timer;
    const Status folded = state.fixy->LearnIncremental(delta);
    obs::AddTimeNs("watch.fold", fold_timer.ElapsedNs());
    if (folded.ok()) {
      const std::string& out =
          options.model_out.empty() ? options.model_path : options.model_out;
      const Status saved = state.fixy->SaveModel(out);
      if (saved.ok()) {
        state.report->folds += 1;
        obs::Count("watch.folds");
        Say(state, "watch: folded %zu scenes into the model (%s)\n",
            delta.scenes.size(), out.c_str());
      } else {
        state.report->errors += 1;
        obs::Count("watch.errors");
        Say(state, "watch: model save failed: %s\n",
            saved.ToString().c_str());
      }
    } else {
      state.report->errors += 1;
      obs::Count("watch.errors");
      Say(state, "watch: fold failed (ranking with the previous model): %s\n",
          folded.ToString().c_str());
    }
  }

  // 5. Re-rank only the changed scenes.
  const obs::StageTimer rank_timer;
  FIXY_ASSIGN_OR_RETURN(
      const MultiAppReport ranked,
      state.fixy->RankDataset(delta, state.apps, state.batch));
  obs::AddTimeNs("watch.rank", rank_timer.ElapsedNs());
  if (state.collector != nullptr) state.collector->Merge(ranked.metrics);
  for (size_t a = 0; a < ranked.apps.size(); ++a) {
    const BatchReport& app_report = ranked.reports[a];
    for (const SceneOutcome& outcome : app_report.outcomes) {
      if (!outcome.ok()) {
        Say(state, "watch: FAILED %s [%s]: %s\n", outcome.scene_name.c_str(),
            ranked.apps[a].c_str(), outcome.status.ToString().c_str());
        continue;
      }
      const auto top = TopK(outcome.proposals,
                            static_cast<size_t>(options.top));
      Say(state, "watch: %s [%s]: %zu candidates\n",
          outcome.scene_name.c_str(), ranked.apps[a].c_str(),
          outcome.proposals.size());
      int rank = 1;
      for (const ErrorProposal& p : top) {
        Say(state, "  #%2d %s\n", rank++, p.ToString().c_str());
      }
    }
  }
  const size_t ranked_ok = ranked.reports.front().scenes_ok;
  state.report->scenes_ranked += ranked_ok;
  obs::Count("watch.scenes_ranked", ranked_ok);
  obs::Count("watch.scene_failures", ranked.reports.front().scenes_failed);
  return Status::Ok();
}

}  // namespace

void RecordWatchMetricsSchema() {
  obs::Count("watch.cycles", 0);
  obs::Count("watch.updates", 0);
  obs::Count("watch.idle", 0);
  obs::Count("watch.errors", 0);
  obs::Count("watch.rebuilds", 0);
  obs::Count("watch.scenes_encoded", 0);
  obs::Count("watch.scenes_dropped", 0);
  obs::Count("watch.scenes_ranked", 0);
  obs::Count("watch.scene_failures", 0);
  obs::Count("watch.folds", 0);
  obs::AddTimeNs("watch.cycle", 0);
  obs::AddTimeNs("watch.update", 0);
  obs::AddTimeNs("watch.fold", 0);
  obs::AddTimeNs("watch.rank", 0);
}

Result<WatchReport> WatchDataset(const WatchOptions& options) {
  std::error_code ec;
  if (!std::filesystem::is_directory(options.data_dir, ec) || ec) {
    return Status::NotFound("dataset directory does not exist: " +
                            options.data_dir);
  }
  if (!std::filesystem::exists(options.data_dir + "/manifest.json", ec) ||
      ec) {
    return Status::InvalidArgument("not a fixy dataset (no manifest.json in " +
                                   options.data_dir + ")");
  }
  if (options.model_path.empty()) {
    return Status::InvalidArgument("watch needs a --model to rank with");
  }
  if (options.poll_interval_ms < 0) {
    return Status::InvalidArgument("poll interval must be >= 0 ms");
  }

  Fixy fixy(options.engine);
  FIXY_RETURN_IF_ERROR(fixy.LoadModel(options.model_path));
  if (options.learn_labels && !fixy.supports_incremental_learning()) {
    return Status::FailedPrecondition(
        "--learn-labels needs a model with sufficient statistics (re-save "
        "it with a current `fixy_cli learn` to enable incremental folds)");
  }

  WatchState state;
  state.fixy = &fixy;
  state.options = &options;
  state.apps = options.apps.empty() ? fixy.applications().names()
                                    : options.apps;
  FIXY_RETURN_IF_ERROR(fixy.applications().Resolve(state.apps).status());
  state.batch = options.batch;
  state.batch.fail_fast = false;  // watch always quarantines, never aborts
  state.batch.collect_metrics = options.collect_metrics;

  WatchReport report;
  state.report = &report;

  obs::MetricsCollector collector;
  const obs::MetricsScope metrics_scope(
      options.collect_metrics ? &collector : nullptr);
  state.collector = options.collect_metrics ? &collector : nullptr;
  if (options.collect_metrics) {
    // Zero-touch every key a cycle can record, so watch snapshots carry
    // one stable key set whatever this run actually encountered.
    RecordWatchMetricsSchema();
    io::RecordFxbMetricsSchema();
    obs::Count("io.bytes_read", 0);
    obs::Count("io.files_read", 0);
    obs::AddTimeNs("io.load", 0);
    obs::AddTimeNs("io.parse", 0);
    obs::AddTimeNs("rank.track_build", 0);
    obs::Count("rank.track_builds", 0);
    for (const std::string& name : fixy.applications().names()) {
      obs::AddTimeNs("rank." + name + ".compile", 0);
      obs::Count("rank." + name + ".factors", 0);
      obs::Count("rank." + name + ".proposals", 0);
      obs::Count("rank." + name + ".pruned_tracks", 0);
    }
  }

  SignalPipe signals;
  if (options.install_signal_handlers) {
    FIXY_RETURN_IF_ERROR(signals.Install());
  }
  const int signal_fd =
      options.install_signal_handlers ? signals.read_fd() : -1;

  Say(state, "watch: polling %s every %d ms (%s)\n", options.data_dir.c_str(),
      options.poll_interval_ms,
      options.max_cycles > 0 ? "bounded" : "until SIGINT/SIGTERM");

  for (;;) {
    // A stop signalled during the previous sleep (or before the loop)
    // wins over further work.
    if (WaitForStop(options.stop_fd, signal_fd, 0)) break;
    report.cycles += 1;
    obs::Count("watch.cycles");
    const obs::StageTimer cycle_timer;
    const Status cycle = CycleOnce(state);
    obs::AddTimeNs("watch.cycle", cycle_timer.ElapsedNs());
    if (!cycle.ok()) {
      // A mid-edit dataset or raced cache: report, count, retry next poll.
      report.errors += 1;
      obs::Count("watch.errors");
      Say(state, "watch: cycle failed (retrying next poll): %s\n",
          cycle.ToString().c_str());
    }
    state.bootstrap = false;
    if (options.on_cycle) options.on_cycle(report);
    if (options.max_cycles > 0 &&
        report.cycles >= static_cast<size_t>(options.max_cycles)) {
      break;
    }
    if (WaitForStop(options.stop_fd, signal_fd, options.poll_interval_ms)) {
      break;
    }
  }

  if (options.collect_metrics) report.metrics = collector.Snapshot();
  Say(state,
      "watch: stopped after %zu cycles (%zu updates, %zu idle, %zu errors, "
      "%zu scenes re-ranked, %zu folds)\n",
      report.cycles, report.updates, report.idle_cycles, report.errors,
      report.scenes_ranked, report.folds);
  return report;
}

}  // namespace fixy::daemon
