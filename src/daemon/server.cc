#include "daemon/server.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "common/macros.h"
#include "common/process.h"
#include "common/thread_pool.h"
#include "core/proposal_io.h"
#include "core/ranker.h"
#include "daemon/protocol.h"
#include "io/fxb.h"
#include "io/scene_io.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "shard/shard_plan.h"
#include "shard/wire.h"

namespace fixy::daemon {

#if defined(__unix__) || defined(__APPLE__)

namespace {

using Clock = std::chrono::steady_clock;

/// Write fd of the serving daemon's stop pipe, for the signal handler.
std::atomic<int> g_signal_stop_fd{-1};

extern "C" void FixydSignalHandler(int) {
  const int fd = g_signal_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // The pipe is non-blocking; a full pipe means a stop is already
    // pending, so a failed write is fine.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void SetCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Writes all of `bytes` to a socket without ever parking the thread on a
/// full send buffer for more than `stall_timeout_ms` at a time: each send
/// is non-blocking, and a would-block waits for POLLOUT with the timeout.
/// A peer that stops draining its socket gets its response dropped (the
/// caller treats any error as a gone peer), instead of wedging a daemon
/// thread forever.
Status SendAll(int fd, std::string_view bytes, int stall_timeout_ms) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#if defined(MSG_NOSIGNAL)
                             MSG_DONTWAIT | MSG_NOSIGNAL
#else
                             MSG_DONTWAIT
#endif
    );
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, stall_timeout_ms);
      if (ready <= 0) {
        return Status::IoError("peer stopped draining its socket");
      }
      continue;
    }
    return Status::IoError("send failed: " + std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

/// One accepted client connection. The main thread owns the read side
/// (parser); response writes from worker threads serialize on write_mu.
/// The fd closes only in the destructor — after the last worker drops its
/// reference — so a worker can never write to a recycled fd number.
struct Connection {
  int fd = -1;
  shard::FrameParser parser;
  std::mutex write_mu;
  bool open = true;  // guarded by write_mu

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

/// A dataset directory held resident: the opened source (mmap'd FXB when
/// fresh, per-file JSON otherwise) plus the source fingerprint it was
/// opened at, so an edited dataset transparently reopens.
struct ResidentDataset {
  std::unique_ptr<SceneSource> source;
  io::FxbSourceFingerprint fingerprint;
  bool from_cache = false;
};

}  // namespace

struct FixydServer::Impl {
  ServerOptions options;
  std::unique_ptr<Fixy> fixy;
  /// Learn holds it exclusive; rank/status hold it shared.
  std::shared_mutex state_mu;
  bool model_loaded = false;  // guarded by state_mu

  int listen_fd = -1;
  int stop_read_fd = -1;
  int stop_write_fd = -1;
  std::atomic<bool> stopping{false};
  std::atomic<int> pending{0};
  Clock::time_point started = Clock::now();
  bool served = false;

  obs::MetricsCollector collector;

  std::mutex datasets_mu;
  std::map<std::string, std::shared_ptr<ResidentDataset>> datasets;

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (stop_read_fd >= 0) ::close(stop_read_fd);
    if (stop_write_fd >= 0) ::close(stop_write_fd);
  }

  // ---- connection plumbing ----

  void WriteToConnection(Connection& conn, std::string_view bytes,
                         int stall_timeout_ms) {
    std::lock_guard<std::mutex> lock(conn.write_mu);
    if (!conn.open) return;
    const Status status = SendAll(conn.fd, bytes, stall_timeout_ms);
    if (!status.ok()) conn.open = false;  // peer gone or wedged: stop writing
  }

  void SendErrorFrame(Connection& conn, const Status& status) {
    collector.Count("daemon.errors");
    WriteToConnection(
        conn,
        shard::EncodeFrame(shard::FrameType::kError,
                           shard::EncodeErrorPayload(status)),
        /*stall_timeout_ms=*/50);
  }

  void SendResponse(Connection& conn, const Response& response,
                    int stall_timeout_ms) {
    WriteToConnection(conn, EncodeResponseFrame(response), stall_timeout_ms);
  }

  // ---- request handling (worker threads) ----

  void HandleRequest(const std::shared_ptr<Connection>& conn, Request request,
                     Clock::time_point enqueued) {
    if (options.test_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.test_delay_ms));
    }
    const auto queue_wait = Clock::now() - enqueued;
    const uint64_t queue_wait_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(queue_wait)
            .count());
    collector.AddTimeNs("daemon.queue_wait", queue_wait_ns);

    Response response;
    response.id = request.id;
    const int64_t waited_ms =
        static_cast<int64_t>(queue_wait_ns / UINT64_C(1000000));
    if (request.deadline_ms > 0 && waited_ms > request.deadline_ms) {
      // The admission ladder's second rung: the request was accepted but
      // sat in the queue past its deadline; running it now would hand the
      // client a result it has already given up on.
      collector.Count("daemon.rejected");
      response.status = Status::Unavailable(
          "deadline exceeded: waited " + std::to_string(waited_ms) +
          " ms in queue (deadline " + std::to_string(request.deadline_ms) +
          " ms)");
      SendResponse(*conn, response, /*stall_timeout_ms=*/50);
      return;
    }

    const obs::StageTimer request_timer;
    Result<json::Value> result = Status::Internal("unhandled request kind");
    switch (request.kind) {
      case RequestKind::kRank:
        result = DoRank(request);
        break;
      case RequestKind::kRankDataset:
        result = DoRankDataset(request);
        break;
      case RequestKind::kLearn:
        result = DoLearn(request);
        break;
      case RequestKind::kStatus:
        result = DoStatus();
        break;
      case RequestKind::kShutdown:
        result = json::Value(json::Object{{"stopping", json::Value(true)}});
        break;
    }
    collector.AddTimeNs("daemon.request", request_timer.ElapsedNs());
    if (result.ok()) {
      response.result = std::move(result).value();
    } else {
      response.status = result.status();
    }
    SendResponse(*conn, response, /*stall_timeout_ms=*/10000);
    if (request.kind == RequestKind::kShutdown && response.status.ok()) {
      Stop();
    }
  }

  // Resolves the requested application names exactly like the CLI: an
  // empty selection means every registered application.
  std::vector<std::string> ResolveApps(const Request& request) {
    return request.apps.empty() ? fixy->applications().names() : request.apps;
  }

  Result<std::shared_ptr<ResidentDataset>> AcquireDataset(
      const std::string& data_dir) {
    if (data_dir.empty()) {
      return Status::InvalidArgument("request needs a dataset directory");
    }
    // Cheap staleness probe (a stat pass over the manifest's files): a
    // resident source is reused only while the JSON sources it was opened
    // from are unchanged. This also rejects non-dataset directories with
    // a clear error before any decode work.
    FIXY_ASSIGN_OR_RETURN(const io::FxbSourceFingerprint fingerprint,
                          io::ComputeSourceFingerprint(data_dir));
    std::lock_guard<std::mutex> lock(datasets_mu);
    const auto it = datasets.find(data_dir);
    if (it != datasets.end() && it->second->fingerprint == fingerprint) {
      return it->second;
    }
    // The sources changed under a resident dataset (or this is the first
    // touch). Report *why* the resident copy went stale, refresh an
    // existing cache incrementally (only the changed scenes re-encode —
    // the daemon stays on the mmap path instead of falling back to JSON),
    // then reopen. A dataset that never had a cache is not given one.
    if (it != datasets.end()) {
      collector.Count("daemon.dataset_reopens");
      const Result<io::CacheStaleness> staleness =
          io::ExplainCacheStaleness(data_dir);
      std::printf("fixyd: dataset %s changed (%s); revalidating\n",
                  data_dir.c_str(),
                  staleness.ok() ? staleness->Summary().c_str()
                                 : staleness.status().ToString().c_str());
      std::fflush(stdout);
      if (staleness.ok() && staleness->stale) {
        const Result<io::FxbUpdateReport> refreshed =
            io::UpdateFxbCache(data_dir);
        if (refreshed.ok()) {
          collector.Count("daemon.cache_refreshes");
          std::printf("fixyd: cache refreshed — %zu scenes (%zu reused, "
                      "%zu re-encoded, %zu dropped%s)\n",
                      refreshed->scenes_total, refreshed->scenes_reused,
                      refreshed->scenes_encoded, refreshed->scenes_dropped,
                      refreshed->rebuilt ? ", full rebuild" : "");
        } else {
          std::printf("fixyd: cache refresh failed (%s); reopening anyway\n",
                      refreshed.status().ToString().c_str());
        }
        std::fflush(stdout);
      }
    }
    FIXY_ASSIGN_OR_RETURN(shard::ShardSource opened,
                          shard::OpenShardSource(data_dir, /*no_cache=*/false));
    auto resident = std::make_shared<ResidentDataset>();
    resident->source = std::move(opened.source);
    resident->fingerprint = fingerprint;
    resident->from_cache = opened.from_cache;
    if (resident->source->scene_count() == 0) {
      return Status::InvalidArgument("dataset contains no scenes: " + data_dir);
    }
    datasets[data_dir] = resident;
    return resident;
  }

  /// The response body shared by rank and rank-dataset. `proposals` maps
  /// each application to the EXACT bytes `fixy_cli rank --out` would
  /// write for it (per-scene TopK(top) concatenated in scene order, then
  /// SaveProposals' pretty serialization) — the byte-parity contract is
  /// "a client writing this string verbatim produces the CLI's file".
  static json::Value BuildRankResult(const MultiAppReport& report, int top) {
    json::Object result;
    json::Array apps;
    json::Object proposals;
    json::Object counts;
    json::Object failed;
    for (size_t a = 0; a < report.apps.size(); ++a) {
      const std::string& app = report.apps[a];
      apps.emplace_back(app);
      std::vector<ErrorProposal> all;
      for (const SceneOutcome& outcome : report.reports[a].outcomes) {
        if (!outcome.ok()) continue;
        const std::vector<ErrorProposal> scene_top =
            TopK(outcome.proposals, static_cast<size_t>(top));
        all.insert(all.end(), scene_top.begin(), scene_top.end());
      }
      proposals[app] =
          json::Value(json::Write(ProposalsToJson(all), /*pretty=*/true));
      counts[app] = json::Value(static_cast<uint64_t>(all.size()));
      failed[app] = json::Value(
          static_cast<uint64_t>(report.reports[a].scenes_failed));
    }
    result["apps"] = json::Value(std::move(apps));
    result["proposals"] = json::Value(std::move(proposals));
    result["counts"] = json::Value(std::move(counts));
    result["failed"] = json::Value(std::move(failed));
    result["scenes"] = json::Value(static_cast<uint64_t>(
        report.reports.empty() ? 0 : report.reports.front().outcomes.size()));
    return json::Value(std::move(result));
  }

  Status CheckLearnedLocked() {
    if (!model_loaded) {
      return Status::FailedPrecondition(
          "daemon has no learned model: start it with --model or send a "
          "learn request first");
    }
    return Status::Ok();
  }

  void RecordAppTimers(const std::vector<std::string>& apps, uint64_t ns) {
    // One shared association pass serves every requested application, so
    // (like SceneOutcome::wall_ms) each app's latency timer records the
    // shared elapsed time.
    for (const std::string& app : apps) {
      collector.AddTimeNs("daemon.rank." + app, ns);
    }
  }

  Result<json::Value> DoRank(const Request& request) {
    std::shared_lock<std::shared_mutex> lock(state_mu);
    FIXY_RETURN_IF_ERROR(CheckLearnedLocked());
    const std::vector<std::string> apps = ResolveApps(request);
    FIXY_ASSIGN_OR_RETURN(const std::shared_ptr<ResidentDataset> dataset,
                          AcquireDataset(request.data_dir));
    const SceneSource& source = *dataset->source;
    size_t index = 0;
    if (!request.scene.empty()) {
      if (request.scene_index >= 0) {
        return Status::InvalidArgument(
            "pass either scene or scene_index, not both");
      }
      bool found = false;
      for (size_t i = 0; i < source.scene_count(); ++i) {
        if (source.scene_name(i) == request.scene) {
          index = i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("no scene named '" + request.scene + "' in " +
                                request.data_dir);
      }
    } else {
      if (request.scene_index < 0) {
        return Status::InvalidArgument(
            "rank needs a scene (by name) or scene_index");
      }
      index = static_cast<size_t>(request.scene_index);
      if (index >= source.scene_count()) {
        return Status::OutOfRange(
            "scene_index " + std::to_string(index) + " out of range (" +
            std::to_string(source.scene_count()) + " scenes)");
      }
    }
    FIXY_ASSIGN_OR_RETURN(const Scene scene, source.DecodeScene(index));
    const obs::StageTimer rank_timer;
    FIXY_ASSIGN_OR_RETURN(const MultiAppReport report,
                          fixy->RankScene(scene, apps));
    RecordAppTimers(report.apps, rank_timer.ElapsedNs());
    return BuildRankResult(report, request.top);
  }

  Result<json::Value> DoRankDataset(const Request& request) {
    std::shared_lock<std::shared_mutex> lock(state_mu);
    FIXY_RETURN_IF_ERROR(CheckLearnedLocked());
    const std::vector<std::string> apps = ResolveApps(request);
    FIXY_ASSIGN_OR_RETURN(const std::shared_ptr<ResidentDataset> dataset,
                          AcquireDataset(request.data_dir));
    BatchOptions batch;
    batch.num_threads = options.rank_threads;
    const obs::StageTimer rank_timer;
    FIXY_ASSIGN_OR_RETURN(
        const MultiAppReport report,
        fixy->RankDatasetStreaming(*dataset->source, apps, batch));
    RecordAppTimers(report.apps, rank_timer.ElapsedNs());
    return BuildRankResult(report, request.top);
  }

  Result<json::Value> DoLearn(const Request& request) {
    if (request.data_dir.empty()) {
      return Status::InvalidArgument("learn needs a dataset directory");
    }
    // Exclusive: ranking must never observe a half-replaced model.
    std::unique_lock<std::shared_mutex> lock(state_mu);
    FIXY_ASSIGN_OR_RETURN(const Dataset dataset,
                          io::LoadDataset(request.data_dir));
    FIXY_RETURN_IF_ERROR(fixy->Learn(dataset));
    model_loaded = true;
    if (!request.model_out.empty()) {
      FIXY_RETURN_IF_ERROR(fixy->SaveModel(request.model_out));
    }
    json::Object result;
    result["scenes"] =
        json::Value(static_cast<uint64_t>(dataset.scenes.size()));
    result["features"] =
        json::Value(static_cast<uint64_t>(fixy->learned_features().size()));
    return json::Value(std::move(result));
  }

  Result<json::Value> DoStatus() {
    std::shared_lock<std::shared_mutex> lock(state_mu);
    json::Object result;
    result["pid"] = json::Value(static_cast<int64_t>(::getpid()));
    result["uptime_ms"] = json::Value(static_cast<int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              started)
            .count()));
    result["model_loaded"] = json::Value(model_loaded);
    json::Array apps;
    for (const std::string& name : fixy->applications().names()) {
      apps.emplace_back(name);
    }
    result["apps"] = json::Value(std::move(apps));
    result["worker_threads"] = json::Value(options.worker_threads);
    result["max_queue_depth"] = json::Value(options.max_queue_depth);
    result["pending"] = json::Value(pending.load());
    {
      std::lock_guard<std::mutex> datasets_lock(datasets_mu);
      result["resident_datasets"] =
          json::Value(static_cast<uint64_t>(datasets.size()));
    }
    result["metrics"] = obs::MetricsToJson(collector.Snapshot());
    return json::Value(std::move(result));
  }

  // ---- main loop (read side) ----

  void Stop() {
    stopping.store(true);
    if (stop_write_fd >= 0) {
      const char byte = 's';
      [[maybe_unused]] const ssize_t n = ::write(stop_write_fd, &byte, 1);
    }
  }

  void HandleFrame(ThreadPool& pool, const std::shared_ptr<Connection>& conn,
                   const shard::Frame& frame) {
    if (frame.type != shard::FrameType::kRequest) {
      SendErrorFrame(*conn,
                     Status::InvalidArgument(
                         "unexpected frame type on a daemon connection"));
      return;
    }
    const Result<json::Value> body = json::Parse(frame.payload);
    if (!body.ok()) {
      SendErrorFrame(*conn, Status::InvalidArgument(
                                "request frame payload is not valid JSON: " +
                                body.status().message()));
      return;
    }
    Result<Request> request = RequestFromJson(*body);
    if (!request.ok()) {
      SendErrorFrame(*conn, request.status());
      return;
    }
    // Admission ladder, first rung: a bounded pending count (queued +
    // executing). Beyond it the daemon sheds load explicitly instead of
    // queueing work the client will time out on.
    collector.Count("daemon.requests");
    const int depth = pending.fetch_add(1) + 1;
    collector.SetGauge("daemon.queue_depth", static_cast<double>(depth));
    if (stopping.load() || depth > options.max_queue_depth) {
      pending.fetch_sub(1);
      collector.Count("daemon.rejected");
      Response response;
      response.id = request->id;
      response.status = Status::Unavailable(
          stopping.load()
              ? "daemon is draining for shutdown"
              : "daemon overloaded: " + std::to_string(depth - 1) +
                    " requests already pending (max " +
                    std::to_string(options.max_queue_depth) + ")");
      SendResponse(*conn, response, /*stall_timeout_ms=*/50);
      return;
    }
    const Clock::time_point enqueued = Clock::now();
    Impl* impl = this;
    Request req = std::move(request).value();
    pool.Submit([impl, conn, req = std::move(req), enqueued]() mutable {
      impl->HandleRequest(conn, std::move(req), enqueued);
      impl->pending.fetch_sub(1);
    });
  }

  void ReadConnection(ThreadPool& pool, const std::shared_ptr<Connection>& conn,
                      bool& remove) {
    char buffer[4096];
    const ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
      remove = true;
      return;
    }
    if (n == 0) {  // peer closed
      remove = true;
      return;
    }
    const std::vector<shard::Frame> frames =
        conn->parser.Consume(std::string_view(buffer, static_cast<size_t>(n)));
    for (const shard::Frame& frame : frames) HandleFrame(pool, conn, frame);
    if (conn->parser.corrupt()) {
      // A framing violation poisons the whole byte stream (wire.h: no
      // resync). Tell the peer, then drop the connection; in-flight
      // responses on it are abandoned.
      SendErrorFrame(*conn,
                     Status::InvalidArgument(
                         "corrupt frame stream (bad CRC, type, or length)"));
      remove = true;
    }
  }

  Status Serve() {
    if (served) {
      return Status::FailedPrecondition("Serve() may only be called once");
    }
    served = true;

    // SIGTERM/SIGINT → one byte down the stop pipe → graceful drain.
    g_signal_stop_fd.store(stop_write_fd, std::memory_order_relaxed);
    struct sigaction action = {};
    action.sa_handler = &FixydSignalHandler;
    sigemptyset(&action.sa_mask);
    struct sigaction old_term = {};
    struct sigaction old_int = {};
    ::sigaction(SIGTERM, &action, &old_term);
    ::sigaction(SIGINT, &action, &old_int);

    std::map<int, std::shared_ptr<Connection>> connections;
    {
      ThreadPool pool(options.worker_threads);
      for (;;) {
        std::vector<struct pollfd> pollfds;
        pollfds.push_back({stop_read_fd, POLLIN, 0});
        pollfds.push_back({listen_fd, POLLIN, 0});
        for (const auto& [fd, conn] : connections) {
          pollfds.push_back({fd, POLLIN, 0});
        }
        const int ready =
            ::poll(pollfds.data(), pollfds.size(), /*timeout=*/-1);
        if (ready < 0) {
          if (errno == EINTR) continue;
          break;
        }
        if ((pollfds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) break;
        if ((pollfds[1].revents & POLLIN) != 0) {
          const int fd = ::accept(listen_fd, nullptr, nullptr);
          if (fd >= 0) {
            SetCloexec(fd);
            auto conn = std::make_shared<Connection>();
            conn->fd = fd;
            connections[fd] = std::move(conn);
            collector.Count("daemon.connections");
          }
        }
        for (size_t i = 2; i < pollfds.size(); ++i) {
          if ((pollfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
            continue;
          }
          const auto it = connections.find(pollfds[i].fd);
          if (it == connections.end()) continue;
          bool remove = false;
          ReadConnection(pool, it->second, remove);
          if (remove) {
            // Mark closed under the write lock so no worker writes after
            // this; the fd itself closes when the last reference drops.
            std::lock_guard<std::mutex> lock(it->second->write_mu);
            it->second->open = false;
            connections.erase(it);
          }
        }
      }
      // Graceful drain: stop admitting, stop accepting, let the pool
      // finish (its destructor runs every already-submitted request, and
      // their responses still reach the open connections above).
      stopping.store(true);
      ::close(listen_fd);
      listen_fd = -1;
      ::unlink(options.socket_path.c_str());
    }  // ~ThreadPool: in-flight and queued requests complete here
    for (auto& [fd, conn] : connections) {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      conn->open = false;
    }
    connections.clear();

    g_signal_stop_fd.store(-1, std::memory_order_relaxed);
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
    return Status::Ok();
  }
};

Result<std::unique_ptr<FixydServer>> FixydServer::Create(
    ServerOptions options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("fixyd needs a socket path");
  }
  if (options.worker_threads < 1) {
    return Status::InvalidArgument("worker_threads must be >= 1");
  }
  if (options.max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  struct sockaddr_un address = {};
  if (options.socket_path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument(
        "socket path too long for a unix socket: " + options.socket_path);
  }
  // A worker writing a response to a client that vanished must get
  // EPIPE, not die.
  IgnoreSigpipe();

  auto impl = std::make_unique<Impl>();
  impl->options = std::move(options);
  impl->fixy = std::make_unique<Fixy>(impl->options.engine);
  if (!impl->options.model_path.empty()) {
    FIXY_RETURN_IF_ERROR(impl->fixy->LoadModel(impl->options.model_path));
    impl->model_loaded = true;
  }
  {
    // Pre-register every daemon.* key so the first status snapshot (and
    // the metrics schema golden) sees the full stable key set.
    const obs::MetricsScope scope(&impl->collector);
    RecordDaemonMetricsSchema(impl->fixy->applications().names());
  }

  const std::string& path = impl->options.socket_path;
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  // Stale-socket cleanup: a crashed daemon leaves its socket file
  // behind, and bind() would fail on it. Distinguish "stale" from "in
  // use" by connecting: refused/failed means nobody is listening.
  if (::access(path.c_str(), F_OK) == 0) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      return Status::IoError("socket() failed: " +
                             std::string(std::strerror(errno)));
    }
    const int connected = ::connect(
        probe, reinterpret_cast<const struct sockaddr*>(&address),
        sizeof(address));
    ::close(probe);
    if (connected == 0) {
      return Status::AlreadyExists("another fixyd is already serving on " +
                                   path);
    }
    ::unlink(path.c_str());
  }

  impl->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl->listen_fd < 0) {
    return Status::IoError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  SetCloexec(impl->listen_fd);
  if (::bind(impl->listen_fd,
             reinterpret_cast<const struct sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Status::IoError("bind(" + path + ") failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::listen(impl->listen_fd, 64) != 0) {
    return Status::IoError("listen(" + path + ") failed: " +
                           std::string(std::strerror(errno)));
  }

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    return Status::IoError("pipe() failed: " +
                           std::string(std::strerror(errno)));
  }
  impl->stop_read_fd = pipe_fds[0];
  impl->stop_write_fd = pipe_fds[1];
  SetCloexec(impl->stop_read_fd);
  SetCloexec(impl->stop_write_fd);
  // The write end must never block (it is written from signal handlers).
  const int flags = ::fcntl(impl->stop_write_fd, F_GETFL);
  if (flags >= 0) ::fcntl(impl->stop_write_fd, F_SETFL, flags | O_NONBLOCK);

  return std::unique_ptr<FixydServer>(new FixydServer(std::move(impl)));
}

FixydServer::FixydServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

FixydServer::~FixydServer() {
  if (impl_ != nullptr && impl_->listen_fd >= 0) {
    // Destroyed without Serve() ever draining: release the socket path.
    ::unlink(impl_->options.socket_path.c_str());
  }
}

Status FixydServer::Serve() { return impl_->Serve(); }

void FixydServer::RequestStop() { impl_->Stop(); }

const std::string& FixydServer::socket_path() const {
  return impl_->options.socket_path;
}

#else  // !(__unix__ || __APPLE__)

struct FixydServer::Impl {
  ServerOptions options;
};

Result<std::unique_ptr<FixydServer>> FixydServer::Create(ServerOptions) {
  return Status::Unimplemented("fixyd requires a POSIX platform");
}

FixydServer::FixydServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
FixydServer::~FixydServer() = default;
Status FixydServer::Serve() {
  return Status::Unimplemented("fixyd requires a POSIX platform");
}
void FixydServer::RequestStop() {}
const std::string& FixydServer::socket_path() const {
  return impl_->options.socket_path;
}

#endif

}  // namespace fixy::daemon
