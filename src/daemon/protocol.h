// The fixyd request/response protocol: JSON request and response bodies
// carried in the shard wire format's CRC-checked frames (FrameType
// kRequest / kResponse), over a unix-domain stream socket.
//
// A connection is a sequence of independent request frames; the daemon
// answers each with exactly one response frame carrying the request's id
// (responses to concurrently executing requests may interleave in any
// order, which is why the id exists). Request-level failures — unknown
// application, unlearned model, overload — travel as a kResponse with a
// non-ok status; *framing* failures (CRC mismatch, unknown type,
// oversized payload, unparseable JSON) are answered with a kError frame,
// after which the daemon drops the connection if the byte stream itself
// is corrupt (the parser cannot resynchronize; see wire.h).
#ifndef FIXY_DAEMON_PROTOCOL_H_
#define FIXY_DAEMON_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/json.h"
#include "shard/wire.h"

namespace fixy::daemon {

enum class RequestKind {
  /// Rank one scene of a resident dataset (by index or name).
  kRank = 0,
  /// Rank every scene of a dataset directory (the CLI `rank` workload).
  kRankDataset = 1,
  /// Re-learn the resident model from a dataset directory's labels.
  kLearn = 2,
  /// Daemon health, registry, and metrics snapshot.
  kStatus = 3,
  /// Graceful drain: in-flight requests finish, then the daemon exits.
  kShutdown = 4,
};

const char* RequestKindToString(RequestKind kind);
Result<RequestKind> RequestKindFromString(const std::string& name);

struct Request {
  /// Client-chosen correlation id, echoed on the response.
  uint64_t id = 0;
  RequestKind kind = RequestKind::kStatus;
  /// Dataset directory (rank / rank-dataset / learn).
  std::string data_dir;
  /// rank: the scene, by index ...
  int64_t scene_index = -1;
  /// ... or by name (exactly one of the two).
  std::string scene;
  /// Applications to rank; empty means every registered application.
  std::vector<std::string> apps;
  /// Per-scene proposal cap, like the CLI's --top.
  int top = 10;
  /// Admission deadline: if the request waits longer than this in the
  /// daemon's queue before a worker picks it up, it fails with
  /// Unavailable instead of running late. 0 = no deadline.
  int64_t deadline_ms = 0;
  /// learn: optional path to persist the re-learned model to.
  std::string model_out;
};

json::Value RequestToJson(const Request& request);
Result<Request> RequestFromJson(const json::Value& value);

struct Response {
  uint64_t id = 0;
  /// Request-level outcome. kUnavailable marks admission-control
  /// rejections (queue full, deadline exceeded, daemon draining).
  Status status;
  /// Kind-specific payload (see DESIGN.md §13); empty object on error.
  json::Value result = json::Object{};
};

json::Value ResponseToJson(const Response& response);
Result<Response> ResponseFromJson(const json::Value& value);

/// Complete wire frames (EncodeFrame over the JSON body).
std::string EncodeRequestFrame(const Request& request);
std::string EncodeResponseFrame(const Response& response);

/// Records every daemon.* counter, timer, and gauge at zero on the
/// calling thread's collector — one key per registered application name
/// for the per-app latency timers — so metric snapshots carry a stable
/// key set whether or not a daemon actually served (the schema golden
/// depends on this).
void RecordDaemonMetricsSchema(const std::vector<std::string>& apps);

}  // namespace fixy::daemon

#endif  // FIXY_DAEMON_PROTOCOL_H_
