#include "daemon/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "common/macros.h"
#include "common/process.h"
#include "json/json.h"

namespace fixy::daemon {

#if defined(__unix__) || defined(__APPLE__)

Result<FixydClient> FixydClient::Connect(const std::string& socket_path) {
  struct sockaddr_un address = {};
  if (socket_path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument("socket path too long for a unix socket: " +
                                   socket_path);
  }
  IgnoreSigpipe();
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return Status::IoError(
        "cannot connect to fixyd at " + socket_path + ": " +
        std::strerror(saved_errno) +
        " (is the daemon running? start one with `fixy_cli serve --socket " +
        socket_path + "`)");
  }
  return FixydClient(fd);
}

FixydClient::FixydClient(FixydClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      parser_(std::move(other.parser_)),
      buffered_(std::move(other.buffered_)) {}

FixydClient& FixydClient::operator=(FixydClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    parser_ = std::move(other.parser_);
    buffered_ = std::move(other.buffered_);
  }
  return *this;
}

FixydClient::~FixydClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status FixydClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  return WriteAllFd(fd_, bytes);
}

Result<shard::Frame> FixydClient::ReadFrame(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!buffered_.empty()) {
      shard::Frame frame = std::move(buffered_.front());
      buffered_.erase(buffered_.begin());
      return frame;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::Unavailable("timed out waiting for a daemon response");
    }
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll failed: " +
                             std::string(std::strerror(errno)));
    }
    if (ready == 0) {
      return Status::Unavailable("timed out waiting for a daemon response");
    }
    char buffer[4096];
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError("daemon closed the connection");
    }
    std::vector<shard::Frame> frames =
        parser_.Consume(std::string_view(buffer, static_cast<size_t>(n)));
    for (shard::Frame& frame : frames) buffered_.push_back(std::move(frame));
    if (parser_.corrupt()) {
      return Status::IoError("corrupt frame stream from the daemon");
    }
  }
}

Result<Response> FixydClient::Call(const Request& request, int timeout_ms) {
  Request to_send = request;
  if (to_send.id == 0) to_send.id = next_id_++;
  FIXY_RETURN_IF_ERROR(SendRaw(EncodeRequestFrame(to_send)));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::Unavailable("timed out waiting for a daemon response");
    }
    FIXY_ASSIGN_OR_RETURN(const shard::Frame frame,
                          ReadFrame(static_cast<int>(remaining.count())));
    if (frame.type == shard::FrameType::kError) {
      return shard::DecodeErrorPayload(frame.payload);
    }
    if (frame.type != shard::FrameType::kResponse) {
      continue;  // not part of the client protocol; ignore
    }
    FIXY_ASSIGN_OR_RETURN(const json::Value body, json::Parse(frame.payload));
    FIXY_ASSIGN_OR_RETURN(Response response, ResponseFromJson(body));
    if (response.id != to_send.id) continue;  // someone else's (stale) reply
    return response;
  }
}

#else  // !(__unix__ || __APPLE__)

Result<FixydClient> FixydClient::Connect(const std::string&) {
  return Status::Unimplemented("fixyd requires a POSIX platform");
}
FixydClient::FixydClient(FixydClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}
FixydClient& FixydClient::operator=(FixydClient&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  return *this;
}
FixydClient::~FixydClient() = default;
Status FixydClient::SendRaw(std::string_view) {
  return Status::Unimplemented("fixyd requires a POSIX platform");
}
Result<shard::Frame> FixydClient::ReadFrame(int) {
  return Status::Unimplemented("fixyd requires a POSIX platform");
}
Result<Response> FixydClient::Call(const Request&, int) {
  return Status::Unimplemented("fixyd requires a POSIX platform");
}

#endif

}  // namespace fixy::daemon
