// FixydClient: the thin client side of the fixyd protocol — connect to
// the daemon's unix socket, write one kRequest frame per call, and read
// frames until the matching kResponse (or a kError frame) arrives.
#ifndef FIXY_DAEMON_CLIENT_H_
#define FIXY_DAEMON_CLIENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "daemon/protocol.h"
#include "shard/wire.h"

namespace fixy::daemon {

class FixydClient {
 public:
  /// Connects to the daemon listening on `socket_path`. Errors: IoError
  /// when nothing is listening (the likely causes — daemon not started,
  /// stale path — are named in the message).
  static Result<FixydClient> Connect(const std::string& socket_path);

  FixydClient(FixydClient&& other) noexcept;
  FixydClient& operator=(FixydClient&& other) noexcept;
  FixydClient(const FixydClient&) = delete;
  FixydClient& operator=(const FixydClient&) = delete;
  ~FixydClient();

  /// Sends `request` and waits for its response. A request id of 0 is
  /// replaced with a connection-local sequence number so responses
  /// correlate. Errors: IoError on a dead daemon or corrupt frame
  /// stream; Unavailable when `timeout_ms` elapses first; a kError frame
  /// from the daemon returns its decoded status.
  ///
  /// Note the layering: a non-ok *return* means the exchange itself
  /// failed; a returned Response can still carry a non-ok
  /// Response::status (the request failed inside the daemon).
  Result<Response> Call(const Request& request, int timeout_ms = 120000);

  /// Test hooks for frame-corruption suites: write raw bytes and read
  /// one frame (whatever its type) with a timeout.
  Status SendRaw(std::string_view bytes);
  Result<shard::Frame> ReadFrame(int timeout_ms);

  int fd() const { return fd_; }

 private:
  explicit FixydClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_id_ = 1;
  shard::FrameParser parser_;
  std::vector<shard::Frame> buffered_;
};

}  // namespace fixy::daemon

#endif  // FIXY_DAEMON_CLIENT_H_
