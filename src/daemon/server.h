// fixyd: the resident ranking daemon. One process keeps the learned
// model, the ApplicationRegistry, and mmap'd FXB readers alive across
// requests, so a rank query pays only the ranking — not the per-process
// model load, registry build, and cache open the one-shot CLI repeats on
// every invocation (DESIGN.md §13).
//
// Concurrency model: the main thread owns the listening socket and every
// connection's *read* side (one poll loop, incremental FrameParser per
// connection); admitted requests execute on a fixed ThreadPool, and each
// worker writes its response frame directly to the connection under a
// per-connection write lock. Admission control is a bounded pending
// counter: when `max_queue_depth` requests are already queued or
// executing, new ones are rejected immediately with Unavailable rather
// than queued behind work the client may no longer want; a per-request
// deadline_ms bounds queue wait the same way.
#ifndef FIXY_DAEMON_SERVER_H_
#define FIXY_DAEMON_SERVER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/engine.h"

namespace fixy::daemon {

struct ServerOptions {
  /// Path of the unix-domain listening socket. A leftover socket file
  /// from a crashed daemon is detected (connect refused) and replaced; a
  /// *live* daemon on the path fails Create with AlreadyExists.
  std::string socket_path;
  /// Optional model to load at startup; without it the daemon starts
  /// unlearned and serves only learn/status/shutdown until a learn
  /// request succeeds.
  std::string model_path;
  /// Engine configuration. Must match the CLI's (same extra
  /// applications, same top_k_per_class) for daemon responses to be
  /// byte-identical to one-shot CLI runs.
  FixyOptions engine;
  /// Request-executor threads: how many requests run concurrently.
  int worker_threads = 4;
  /// BatchOptions::num_threads used inside a rank-dataset request.
  int rank_threads = 0;
  /// Admission bound: queued + executing requests beyond this are
  /// rejected with Unavailable.
  int max_queue_depth = 64;
  /// Test hook: every request sleeps this long at execution start,
  /// making overload and deadline rejections deterministic in tests
  /// (the FIXY_SHARD_KILL idiom, as an option instead of an env var).
  int test_delay_ms = 0;
};

/// A running daemon instance. Create() binds and listens (so clients can
/// connect as soon as it returns); Serve() runs the accept/read/dispatch
/// loop until a shutdown request, RequestStop(), SIGTERM, or SIGINT,
/// then drains in-flight requests, closes connections, and removes the
/// socket file.
class FixydServer {
 public:
  static Result<std::unique_ptr<FixydServer>> Create(ServerOptions options);
  ~FixydServer();

  FixydServer(const FixydServer&) = delete;
  FixydServer& operator=(const FixydServer&) = delete;

  /// Blocks serving requests; returns after the graceful drain. Safe to
  /// call at most once.
  Status Serve();

  /// Asynchronously asks Serve() to drain and return. Safe from any
  /// thread and from signal handlers (it only writes one byte to a
  /// pipe).
  void RequestStop();

  const std::string& socket_path() const;

 private:
  struct Impl;
  explicit FixydServer(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace fixy::daemon

#endif  // FIXY_DAEMON_SERVER_H_
