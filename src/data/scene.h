// Scene: a short snippet of sensor time ("scenes ... sent to vendors for
// labeling", Section 1) holding per-frame observations and the ego pose.
#ifndef FIXY_DATA_SCENE_H_
#define FIXY_DATA_SCENE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/observation.h"
#include "geometry/vec.h"

namespace fixy {

/// One sensor sweep: all observations proposed for a single timestamp, from
/// all sources, plus the ego vehicle pose at that time.
struct Frame {
  int index = 0;
  /// Seconds since scene start.
  double timestamp = 0.0;
  /// Ego (AV) position in the world ground plane and heading in radians.
  geom::Vec2 ego_position;
  double ego_yaw = 0.0;
  std::vector<Observation> observations;
};

/// A labeled snippet: an ordered sequence of frames at a fixed rate.
class Scene {
 public:
  Scene() = default;
  Scene(std::string name, double frame_rate_hz)
      : name_(std::move(name)), frame_rate_hz_(frame_rate_hz) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  double frame_rate_hz() const { return frame_rate_hz_; }
  void set_frame_rate_hz(double hz) { frame_rate_hz_ = hz; }

  const std::vector<Frame>& frames() const { return frames_; }
  std::vector<Frame>& frames() { return frames_; }

  void AddFrame(Frame frame) { frames_.push_back(std::move(frame)); }

  size_t frame_count() const { return frames_.size(); }

  /// Scene length in seconds (0 for fewer than two frames).
  double DurationSeconds() const;

  /// Total observations across all frames.
  size_t TotalObservations() const;

  /// Observations from a specific source across all frames.
  size_t CountBySource(ObservationSource source) const;

  /// Validates internal consistency: frame rate finite and positive, frame
  /// indices 0..n-1 in order, timestamps finite and non-decreasing, ego
  /// poses finite, observations carry their frame's index, observation ids
  /// unique within the scene, box fields finite with strictly positive
  /// extents, and confidences in [0, 1] (NaN rejected). This is the
  /// ingestion boundary: garbage that passes here must at worst rank as
  /// low-plausibility, never crash the pipeline. Returns the first
  /// violation found.
  Status Validate() const;

 private:
  std::string name_;
  double frame_rate_hz_ = 10.0;
  std::vector<Frame> frames_;
};

/// A collection of scenes (e.g. "the entire validation set").
struct Dataset {
  std::string name;
  std::vector<Scene> scenes;

  size_t TotalObservations() const;
};

}  // namespace fixy

#endif  // FIXY_DATA_SCENE_H_
