// Core enums and identifiers of the observation data model.
#ifndef FIXY_DATA_TYPES_H_
#define FIXY_DATA_TYPES_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace fixy {

/// Object classes the evaluation focuses on ("the common classes of car,
/// truck, pedestrian, and motorcycle", Section 8.1).
enum class ObjectClass {
  kCar = 0,
  kTruck = 1,
  kPedestrian = 2,
  kMotorcycle = 3,
};

inline constexpr int kNumObjectClasses = 4;

/// All classes, for iteration.
inline constexpr ObjectClass kAllObjectClasses[kNumObjectClasses] = {
    ObjectClass::kCar, ObjectClass::kTruck, ObjectClass::kPedestrian,
    ObjectClass::kMotorcycle};

const char* ObjectClassToString(ObjectClass cls);
Result<ObjectClass> ObjectClassFromString(const std::string& name);

/// Where an observation came from (Section 8.1 uses three sources:
/// human-proposed labels, LIDAR ML model predictions, expert auditor
/// labels).
enum class ObservationSource {
  kHuman = 0,
  kModel = 1,
  kAuditor = 2,
};

inline constexpr int kNumObservationSources = 3;

const char* ObservationSourceToString(ObservationSource source);
Result<ObservationSource> ObservationSourceFromString(const std::string& name);

/// Unique observation identifier within a dataset.
using ObservationId = uint64_t;

/// Unique track identifier within an assembled scene.
using TrackId = uint64_t;

inline constexpr ObservationId kInvalidObservationId = ~0ULL;

}  // namespace fixy

#endif  // FIXY_DATA_TYPES_H_
