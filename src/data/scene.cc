#include "data/scene.h"

#include <unordered_set>

#include "common/string_util.h"

namespace fixy {

double Scene::DurationSeconds() const {
  if (frames_.size() < 2) return 0.0;
  return frames_.back().timestamp - frames_.front().timestamp;
}

size_t Scene::TotalObservations() const {
  size_t total = 0;
  for (const Frame& f : frames_) total += f.observations.size();
  return total;
}

size_t Scene::CountBySource(ObservationSource source) const {
  size_t total = 0;
  for (const Frame& f : frames_) {
    for (const Observation& o : f.observations) {
      if (o.source == source) ++total;
    }
  }
  return total;
}

Status Scene::Validate() const {
  std::unordered_set<ObservationId> seen_ids;
  double prev_timestamp = -1.0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (frame.index != static_cast<int>(i)) {
      return Status::FailedPrecondition(
          StrFormat("scene '%s': frame %zu has index %d", name_.c_str(), i,
                    frame.index));
    }
    if (frame.timestamp < prev_timestamp) {
      return Status::FailedPrecondition(
          StrFormat("scene '%s': frame %zu timestamp decreases",
                    name_.c_str(), i));
    }
    prev_timestamp = frame.timestamp;
    for (const Observation& obs : frame.observations) {
      if (obs.frame_index != frame.index) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu in frame %d claims frame "
                      "%d",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id), frame.index,
                      obs.frame_index));
      }
      if (obs.id == kInvalidObservationId) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation with invalid id",
                      name_.c_str()));
      }
      if (!seen_ids.insert(obs.id).second) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': duplicate observation id %llu",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
      if (!obs.box.IsValid()) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu has degenerate box",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
      if (obs.confidence < 0.0 || obs.confidence > 1.0) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu confidence out of range",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
    }
  }
  return Status::Ok();
}

size_t Dataset::TotalObservations() const {
  size_t total = 0;
  for (const Scene& s : scenes) total += s.TotalObservations();
  return total;
}

}  // namespace fixy
