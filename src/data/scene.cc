#include "data/scene.h"

#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace fixy {

namespace {

// True if every field of the box is finite. IsValid() alone rejects NaN
// extents (NaN > 0 is false) but lets NaN centers and yaws through, and
// those reach feature computation (distances, velocities) during ranking.
bool BoxIsFinite(const geom::Box3d& box) {
  return std::isfinite(box.center.x) && std::isfinite(box.center.y) &&
         std::isfinite(box.center.z) && std::isfinite(box.length) &&
         std::isfinite(box.width) && std::isfinite(box.height) &&
         std::isfinite(box.yaw);
}

}  // namespace

double Scene::DurationSeconds() const {
  if (frames_.size() < 2) return 0.0;
  return frames_.back().timestamp - frames_.front().timestamp;
}

size_t Scene::TotalObservations() const {
  size_t total = 0;
  for (const Frame& f : frames_) total += f.observations.size();
  return total;
}

size_t Scene::CountBySource(ObservationSource source) const {
  size_t total = 0;
  for (const Frame& f : frames_) {
    for (const Observation& o : f.observations) {
      if (o.source == source) ++total;
    }
  }
  return total;
}

Status Scene::Validate() const {
  if (!std::isfinite(frame_rate_hz_) || frame_rate_hz_ <= 0.0) {
    return Status::FailedPrecondition(
        StrFormat("scene '%s': frame rate must be finite and positive",
                  name_.c_str()));
  }
  std::unordered_set<ObservationId> seen_ids;
  double prev_timestamp = -1.0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (frame.index != static_cast<int>(i)) {
      return Status::FailedPrecondition(
          StrFormat("scene '%s': frame %zu has index %d", name_.c_str(), i,
                    frame.index));
    }
    // !(>=) instead of (<) so NaN timestamps are rejected rather than
    // slipping through both orderings.
    if (!(frame.timestamp >= prev_timestamp)) {
      return Status::FailedPrecondition(
          StrFormat("scene '%s': frame %zu timestamp decreases or is not "
                    "finite",
                    name_.c_str(), i));
    }
    if (!std::isfinite(frame.timestamp)) {
      return Status::FailedPrecondition(
          StrFormat("scene '%s': frame %zu timestamp is not finite",
                    name_.c_str(), i));
    }
    if (!std::isfinite(frame.ego_position.x) ||
        !std::isfinite(frame.ego_position.y) ||
        !std::isfinite(frame.ego_yaw)) {
      return Status::FailedPrecondition(
          StrFormat("scene '%s': frame %zu ego pose is not finite",
                    name_.c_str(), i));
    }
    prev_timestamp = frame.timestamp;
    for (const Observation& obs : frame.observations) {
      if (obs.frame_index != frame.index) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu in frame %d claims frame "
                      "%d",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id), frame.index,
                      obs.frame_index));
      }
      if (obs.id == kInvalidObservationId) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation with invalid id",
                      name_.c_str()));
      }
      if (!seen_ids.insert(obs.id).second) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': duplicate observation id %llu",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
      if (!BoxIsFinite(obs.box)) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu box has a non-finite "
                      "field",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
      if (!obs.box.IsValid()) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu has degenerate box "
                      "(non-positive extent)",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
      if (!std::isfinite(obs.timestamp)) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu timestamp is not finite",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
      // Negated so NaN confidence fails the range check too.
      if (!(obs.confidence >= 0.0 && obs.confidence <= 1.0)) {
        return Status::FailedPrecondition(
            StrFormat("scene '%s': observation %llu confidence out of range",
                      name_.c_str(),
                      static_cast<unsigned long long>(obs.id)));
      }
    }
  }
  return Status::Ok();
}

size_t Dataset::TotalObservations() const {
  size_t total = 0;
  for (const Scene& s : scenes) total += s.TotalObservations();
  return total;
}

}  // namespace fixy
