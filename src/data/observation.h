// Observation: one 3D bounding box proposed by a human labeler, an ML
// model, or an expert auditor, at one time step. The atomic unit that LOA
// reasons over (denoted omega in the paper's syntax, Table 1).
#ifndef FIXY_DATA_OBSERVATION_H_
#define FIXY_DATA_OBSERVATION_H_

#include <string>

#include "data/types.h"
#include "geometry/box.h"

namespace fixy {

/// A single observation: source, class, oriented 3D box, timing, and (for
/// model predictions) a confidence score.
struct Observation {
  ObservationId id = kInvalidObservationId;
  ObservationSource source = ObservationSource::kHuman;
  ObjectClass object_class = ObjectClass::kCar;
  geom::Box3d box;
  /// Index of the frame this observation belongs to within its scene.
  int frame_index = 0;
  /// Time in seconds since the start of the scene.
  double timestamp = 0.0;
  /// Detector confidence in [0, 1]. Human and auditor labels carry 1.0.
  double confidence = 1.0;

  /// Short debug string, e.g. "obs 17 model car @f3 conf=0.91".
  std::string ToString() const;
};

}  // namespace fixy

#endif  // FIXY_DATA_OBSERVATION_H_
