// SceneSource: the streaming-ingestion abstraction. A source knows how
// many scenes it has and can decode any one of them on demand, from any
// thread — which is what lets the engine overlap scene decode with
// ranking (Fixy::RankDatasetStreaming) instead of materializing the whole
// dataset before the first scene is scored.
//
// Implementations: io::FxbSceneSource (binary cache, mmap-backed),
// io::DirectorySceneSource (per-file JSON), and the in-memory
// DatasetSceneSource below (tests and already-loaded datasets).
#ifndef FIXY_DATA_SCENE_SOURCE_H_
#define FIXY_DATA_SCENE_SOURCE_H_

#include <string>

#include "common/result.h"
#include "common/string_util.h"
#include "data/scene.h"

namespace fixy {

/// A source of scenes decoded on demand.
class SceneSource {
 public:
  virtual ~SceneSource() = default;

  /// Number of scenes this source can produce.
  virtual size_t scene_count() const = 0;

  /// Best-effort name of scene `index` without decoding it (used to label
  /// the outcome when decode itself fails). May return a placeholder.
  virtual std::string scene_name(size_t index) const = 0;

  /// Decodes scene `index`, validating it at the ingestion boundary.
  /// Thread-safe: may be called concurrently from multiple threads.
  virtual Result<Scene> DecodeScene(size_t index) const = 0;
};

/// An already-materialized Dataset as a SceneSource. Decoding copies the
/// scene out; the referenced dataset must outlive the source.
class DatasetSceneSource : public SceneSource {
 public:
  explicit DatasetSceneSource(const Dataset& dataset) : dataset_(dataset) {}

  size_t scene_count() const override { return dataset_.scenes.size(); }

  std::string scene_name(size_t index) const override {
    return index < dataset_.scenes.size() ? dataset_.scenes[index].name()
                                          : std::string();
  }

  Result<Scene> DecodeScene(size_t index) const override {
    if (index >= dataset_.scenes.size()) {
      return Status::OutOfRange(
          StrFormat("scene index %zu out of range (%zu scenes)", index,
                    dataset_.scenes.size()));
    }
    return dataset_.scenes[index];
  }

 private:
  const Dataset& dataset_;
};

}  // namespace fixy

#endif  // FIXY_DATA_SCENE_SOURCE_H_
