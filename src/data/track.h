// Observation bundles and tracks — the associated structures LOA scores
// (beta and tau in the paper's syntax, Table 1). Bundles group observations
// of the same object from different sources within one time step; tracks
// chain bundles across time.
#ifndef FIXY_DATA_TRACK_H_
#define FIXY_DATA_TRACK_H_

#include <optional>
#include <string>
#include <vector>

#include "data/observation.h"
#include "geometry/vec.h"

namespace fixy {

/// Observations of (putatively) one object in a single frame, across
/// sources.
struct ObservationBundle {
  int frame_index = 0;
  double timestamp = 0.0;
  /// Ego pose at this frame, copied in so bundle/transition features can
  /// compute ego-relative quantities without scene lookups.
  geom::Vec2 ego_position;
  std::vector<Observation> observations;

  bool empty() const { return observations.empty(); }
  bool HasSource(ObservationSource source) const;
  /// Returns the first observation from `source`, if any.
  const Observation* FindBySource(ObservationSource source) const;
  /// Mean of member box centers (the bundle's consensus position).
  geom::Vec3 MeanCenter() const;
  /// Maximum confidence among member observations.
  double MaxConfidence() const;
};

/// A sequence of bundles for one object across time.
class Track {
 public:
  Track() = default;
  explicit Track(TrackId id) : id_(id) {}

  TrackId id() const { return id_; }
  void set_id(TrackId id) { id_ = id; }

  const std::vector<ObservationBundle>& bundles() const { return bundles_; }
  std::vector<ObservationBundle>& bundles() { return bundles_; }
  void AddBundle(ObservationBundle bundle) {
    bundles_.push_back(std::move(bundle));
  }

  size_t size() const { return bundles_.size(); }
  bool empty() const { return bundles_.empty(); }

  /// Total observations across all bundles.
  size_t TotalObservations() const;

  /// True if any member observation comes from `source`.
  bool HasSource(ObservationSource source) const;

  /// Majority class among member observations (ties broken by enum order).
  /// nullopt for an empty track.
  std::optional<ObjectClass> MajorityClass() const;

  int FirstFrame() const;
  int LastFrame() const;

  /// Track duration in seconds (0 for fewer than two bundles).
  double DurationSeconds() const;

  /// Mean detector confidence over model observations; nullopt if the track
  /// has none.
  std::optional<double> MeanModelConfidence() const;

  /// Smallest ego distance over all bundles (how close the object comes to
  /// the AV). 0 for an empty track.
  double MinEgoDistance() const;

  std::string ToString() const;

 private:
  TrackId id_ = 0;
  std::vector<ObservationBundle> bundles_;
};

/// All tracks assembled from one scene.
struct TrackSet {
  std::string scene_name;
  std::vector<Track> tracks;
};

}  // namespace fixy

#endif  // FIXY_DATA_TRACK_H_
