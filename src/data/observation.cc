#include "data/observation.h"

#include "common/string_util.h"

namespace fixy {

std::string Observation::ToString() const {
  return StrFormat("obs %llu %s %s @f%d conf=%.2f",
                   static_cast<unsigned long long>(id),
                   ObservationSourceToString(source),
                   ObjectClassToString(object_class), frame_index, confidence);
}

}  // namespace fixy
