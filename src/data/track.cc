#include "data/track.h"

#include <algorithm>
#include <array>

#include "common/string_util.h"

namespace fixy {

bool ObservationBundle::HasSource(ObservationSource source) const {
  return FindBySource(source) != nullptr;
}

const Observation* ObservationBundle::FindBySource(
    ObservationSource source) const {
  for (const Observation& obs : observations) {
    if (obs.source == source) return &obs;
  }
  return nullptr;
}

geom::Vec3 ObservationBundle::MeanCenter() const {
  geom::Vec3 sum;
  if (observations.empty()) return sum;
  for (const Observation& obs : observations) {
    sum = sum + obs.box.center;
  }
  return sum / static_cast<double>(observations.size());
}

double ObservationBundle::MaxConfidence() const {
  double max_conf = 0.0;
  for (const Observation& obs : observations) {
    max_conf = std::max(max_conf, obs.confidence);
  }
  return max_conf;
}

size_t Track::TotalObservations() const {
  size_t total = 0;
  for (const ObservationBundle& b : bundles_) total += b.observations.size();
  return total;
}

bool Track::HasSource(ObservationSource source) const {
  for (const ObservationBundle& b : bundles_) {
    if (b.HasSource(source)) return true;
  }
  return false;
}

std::optional<ObjectClass> Track::MajorityClass() const {
  std::array<size_t, kNumObjectClasses> counts{};
  size_t total = 0;
  for (const ObservationBundle& b : bundles_) {
    for (const Observation& obs : b.observations) {
      ++counts[static_cast<size_t>(obs.object_class)];
      ++total;
    }
  }
  if (total == 0) return std::nullopt;
  size_t best = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<ObjectClass>(best);
}

int Track::FirstFrame() const {
  return bundles_.empty() ? 0 : bundles_.front().frame_index;
}

int Track::LastFrame() const {
  return bundles_.empty() ? 0 : bundles_.back().frame_index;
}

double Track::DurationSeconds() const {
  if (bundles_.size() < 2) return 0.0;
  return bundles_.back().timestamp - bundles_.front().timestamp;
}

std::optional<double> Track::MeanModelConfidence() const {
  double sum = 0.0;
  size_t count = 0;
  for (const ObservationBundle& b : bundles_) {
    for (const Observation& obs : b.observations) {
      if (obs.source == ObservationSource::kModel) {
        sum += obs.confidence;
        ++count;
      }
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

double Track::MinEgoDistance() const {
  double min_dist = 0.0;
  bool first = true;
  for (const ObservationBundle& b : bundles_) {
    for (const Observation& obs : b.observations) {
      const double d = obs.box.BevCenterDistance(b.ego_position);
      if (first || d < min_dist) {
        min_dist = d;
        first = false;
      }
    }
  }
  return min_dist;
}

std::string Track::ToString() const {
  const auto cls = MajorityClass();
  return StrFormat("track %llu [%d..%d] %zu bundles %zu obs class=%s",
                   static_cast<unsigned long long>(id_), FirstFrame(),
                   LastFrame(), bundles_.size(), TotalObservations(),
                   cls.has_value() ? ObjectClassToString(*cls) : "none");
}

}  // namespace fixy
