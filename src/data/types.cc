#include "data/types.h"

namespace fixy {

const char* ObjectClassToString(ObjectClass cls) {
  switch (cls) {
    case ObjectClass::kCar:
      return "car";
    case ObjectClass::kTruck:
      return "truck";
    case ObjectClass::kPedestrian:
      return "pedestrian";
    case ObjectClass::kMotorcycle:
      return "motorcycle";
  }
  return "unknown";
}

Result<ObjectClass> ObjectClassFromString(const std::string& name) {
  if (name == "car") return ObjectClass::kCar;
  if (name == "truck") return ObjectClass::kTruck;
  if (name == "pedestrian") return ObjectClass::kPedestrian;
  if (name == "motorcycle") return ObjectClass::kMotorcycle;
  return Status::InvalidArgument("unknown object class: " + name);
}

const char* ObservationSourceToString(ObservationSource source) {
  switch (source) {
    case ObservationSource::kHuman:
      return "human";
    case ObservationSource::kModel:
      return "model";
    case ObservationSource::kAuditor:
      return "auditor";
  }
  return "unknown";
}

Result<ObservationSource> ObservationSourceFromString(
    const std::string& name) {
  if (name == "human") return ObservationSource::kHuman;
  if (name == "model") return ObservationSource::kModel;
  if (name == "auditor") return ObservationSource::kAuditor;
  return Status::InvalidArgument("unknown observation source: " + name);
}

}  // namespace fixy
