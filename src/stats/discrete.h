// Discrete feature distributions: Bernoulli (e.g. "classes within a bundle
// agree") and categorical over small integer supports (e.g. track length
// buckets). Section 5.1 of the paper uses a Bernoulli for the bundle class-
// agreement feature.
#ifndef FIXY_STATS_DISCRETE_H_
#define FIXY_STATS_DISCRETE_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "stats/distribution.h"

namespace fixy::stats {

/// Bernoulli over {0, 1}. Density(x) is the probability mass of round(x).
class Bernoulli final : public Distribution {
 public:
  /// Errors: InvalidArgument unless 0 <= p <= 1.
  static Result<Bernoulli> Create(double p_one);

  /// Fits by counting values >= 0.5 as ones, with add-one (Laplace)
  /// smoothing so neither outcome has exactly zero mass.
  /// Errors: InvalidArgument for an empty sample.
  static Result<Bernoulli> Fit(const std::vector<double>& samples);

  double Density(double x) const override;
  double ModeDensity() const override;
  std::string ToString() const override;

  double p_one() const { return p_one_; }

 private:
  explicit Bernoulli(double p_one) : p_one_(p_one) {}

  double p_one_;
};

/// Categorical distribution over integer values; mass of round(x).
class Categorical final : public Distribution {
 public:
  /// Fits by counting rounded values, with add-one smoothing over the
  /// observed support. Errors: InvalidArgument for an empty sample.
  static Result<Categorical> Fit(const std::vector<double>& samples);

  double Density(double x) const override;
  double ModeDensity() const override;
  std::string ToString() const override;

  /// Probability mass of the integer value `v` (0 if unseen).
  double Mass(long v) const;

  /// The full mass function (exposed for serialization).
  const std::map<long, double>& mass() const { return mass_; }

  /// Reconstructs a categorical from a serialized mass function. Errors:
  /// InvalidArgument if empty, entries are negative, or masses do not sum
  /// to ~1.
  static Result<Categorical> FromMass(std::map<long, double> mass);

 private:
  explicit Categorical(std::map<long, double> mass);

  std::map<long, double> mass_;
  double mode_ = 0.0;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_DISCRETE_H_
