#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace fixy::stats {

HistogramDensity::HistogramDensity(double lo, double bin_width,
                                   std::vector<size_t> counts, size_t total)
    : lo_(lo), bin_width_(bin_width), counts_(std::move(counts)),
      total_(total) {
  size_t max_count = 0;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  mode_density_ = static_cast<double>(max_count) /
                  (static_cast<double>(total_) * bin_width_);
}

Result<HistogramDensity> HistogramDensity::Fit(
    const std::vector<double>& samples, int num_bins) {
  if (samples.empty()) {
    return Status::InvalidArgument("histogram requires at least one sample");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("histogram needs num_bins >= 1");
  }
  double lo = samples[0];
  double hi = samples[0];
  for (double s : samples) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("histogram sample is not finite");
    }
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (hi - lo <= 0.0) {
    // All samples identical: widen to a small interval around the value.
    const double pad = std::max(1e-6, std::abs(lo) * 0.01);
    lo -= pad;
    hi += pad;
  }
  const double width = (hi - lo) / num_bins;
  std::vector<size_t> counts(static_cast<size_t>(num_bins), 0);
  for (double s : samples) {
    int bin = static_cast<int>((s - lo) / width);
    bin = std::clamp(bin, 0, num_bins - 1);
    ++counts[static_cast<size_t>(bin)];
  }
  return HistogramDensity(lo, width, std::move(counts), samples.size());
}

Result<HistogramDensity> HistogramDensity::FromParts(
    double lo, double bin_width, std::vector<size_t> counts) {
  if (counts.empty()) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (!(bin_width > 0.0) || !std::isfinite(bin_width) || !std::isfinite(lo)) {
    return Status::InvalidArgument("histogram bin geometry invalid");
  }
  size_t total = 0;
  for (size_t c : counts) total += c;
  if (total == 0) {
    return Status::InvalidArgument("histogram has no samples");
  }
  return HistogramDensity(lo, bin_width, std::move(counts), total);
}

double HistogramDensity::Density(double x) const {
  const double offset = (x - lo_) / bin_width_;
  // Negated bounds check so a NaN offset (non-finite query) returns zero
  // density instead of reaching the size_t cast, which is UB for NaN.
  if (!(offset >= 0.0) ||
      offset >= static_cast<double>(counts_.size()) + 1e-12) {
    return 0.0;
  }
  const size_t bin =
      std::min(static_cast<size_t>(offset), counts_.size() - 1);
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * bin_width_);
}

std::string HistogramDensity::ToString() const {
  return StrFormat("Histogram(bins=%zu, n=%zu)", counts_.size(), total_);
}

}  // namespace fixy::stats
