#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fixy::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size() - 1);
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double SortedQuantile(const std::vector<double>& sorted, double q) {
  FIXY_CHECK(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::vector<double> xs, double q) {
  FIXY_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  return SortedQuantile(xs, q);
}

Summary Summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.stddev = Stddev(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.median = SortedQuantile(xs, 0.5);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> xs) : sorted_(std::move(xs)) {
  FIXY_CHECK(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace fixy::stats
