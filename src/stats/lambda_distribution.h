// A manually-specified distribution wrapping an arbitrary score function.
//
// Section 5 of the paper: "The user may also manually specify feature
// distributions to rank severity (e.g., distance of an object to the AV) or
// to filter certain instances." LambdaDistribution is how such manual
// scores enter the factor graph: the callable returns a relative density in
// [0, 1] and the mode density is 1.
#ifndef FIXY_STATS_LAMBDA_DISTRIBUTION_H_
#define FIXY_STATS_LAMBDA_DISTRIBUTION_H_

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "stats/distribution.h"

namespace fixy::stats {

/// Wraps `fn` as a Distribution with unit mode density. The callable's
/// return value is clamped to [0, 1].
class LambdaDistribution final : public Distribution {
 public:
  LambdaDistribution(std::string name, std::function<double(double)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  double Density(double x) const override {
    return std::clamp(fn_(x), 0.0, 1.0);
  }
  double ModeDensity() const override { return 1.0; }
  std::string ToString() const override { return "Lambda(" + name_ + ")"; }

 private:
  std::string name_;
  std::function<double(double)> fn_;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_LAMBDA_DISTRIBUTION_H_
