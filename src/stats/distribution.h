// The Distribution interface that learned feature distributions implement.
//
// Fixy scores observations by the likelihood of their feature values under
// distributions fit to existing organizational data (Section 5 of the
// paper). A Distribution reports both a raw density and a *normalized
// score* in (0, 1]: density divided by the distribution's mode density.
// The normalized score is what feature distributions feed through
// application objective functions into ln(.) during scoring (Section 6) —
// it is scale-free, so features with very different units (cubic meters,
// meters/second) are comparable.
#ifndef FIXY_STATS_DISTRIBUTION_H_
#define FIXY_STATS_DISTRIBUTION_H_

#include <cmath>
#include <memory>
#include <span>
#include <string>

namespace fixy::stats {

/// Floor applied to normalized scores so ln(.) stays finite. Chosen so a
/// single catastrophically unlikely feature dominates a component's score
/// without producing -inf.
inline constexpr double kScoreFloor = 1e-9;

/// Interface for univariate probability distributions (continuous densities
/// or discrete mass functions) used as learned feature distributions.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density (or mass) at `x`. Non-negative.
  virtual double Density(double x) const = 0;

  /// Evaluates the density at every element of `xs`, writing into `out`
  /// (which must have the same extent). Semantically identical to calling
  /// Density per element; estimators with a cheaper batch path (the KDE)
  /// override it. Factor scoring evaluates features in batches through
  /// this entry point.
  virtual void DensityBatch(std::span<const double> xs,
                            std::span<double> out) const {
    for (size_t i = 0; i < xs.size(); ++i) out[i] = Density(xs[i]);
  }

  /// Density at the distribution's mode; the normalization constant for
  /// NormalizedScore. Strictly positive for a fitted distribution.
  virtual double ModeDensity() const = 0;

  /// Whether a density evaluation is expensive (super-constant in the
  /// sample count). The top-k pruning bound (DESIGN.md §11) evaluates
  /// cheap distributions exactly and bounds costly ones by their maximum
  /// normalized score of 1. The KDE overrides this to true.
  virtual bool CostlyDensity() const { return false; }

  /// Density(x) / ModeDensity(), clamped to [kScoreFloor, 1].
  double NormalizedScore(double x) const {
    return NormalizedScoreFromDensity(Density(x));
  }

  /// The NormalizedScore clamp applied to an already-computed density —
  /// shared by the scalar and batch scoring paths so both produce
  /// identical values.
  double NormalizedScoreFromDensity(double density) const {
    const double mode = ModeDensity();
    if (mode <= 0.0) return kScoreFloor;
    const double s = density / mode;
    // !(>=) maps a NaN density (degenerate estimator input) to the floor
    // instead of letting it poison downstream ln(.) sums and sorts.
    if (!(s >= kScoreFloor)) return kScoreFloor;
    if (s > 1.0) return 1.0;
    return s;
  }

  /// Natural log of Density(x), floored to keep sums finite.
  double LogDensity(double x) const {
    const double d = Density(x);
    return std::log(d > kScoreFloor ? d : kScoreFloor);
  }

  /// Short human-readable description, e.g. "KDE(n=1200, bw=0.31)".
  virtual std::string ToString() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace fixy::stats

#endif  // FIXY_STATS_DISTRIBUTION_H_
