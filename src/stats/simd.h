// Runtime-dispatched SIMD kernels for the KDE hot path (DESIGN.md §11).
//
// The only kernel today is the Gaussian window sum
//     sum_i exp(-0.5 * ((x - s[i]) * inv_bw)^2)
// which is >80% of factor-graph compile time. Two implementations exist:
// a portable scalar one and an AVX2+FMA one. Both evaluate exp() with the
// same fused polynomial (Cody-Waite reduction, degree-13 Taylor core,
// exponent reassembly through the exponent bits) and accumulate in the
// same 4-lane striped order, so their results are bit-identical per call
// — dispatch never changes program output, only wall-clock. The polynomial
// differs from std::exp by a few ULP per kernel term; the observed density
// shift is < 1e-13 relative (documented in DESIGN.md §11).
//
// Dispatch is decided once, at first use, from CPUID; tests can pin a
// kernel with SetKernelForTesting to compare the paths directly.
#ifndef FIXY_STATS_SIMD_H_
#define FIXY_STATS_SIMD_H_

#include <cstddef>

namespace fixy::stats::simd {

enum class Kernel {
  kScalar,
  kAvx2,
};

/// The kernel the process dispatches to: the test override if one is set,
/// otherwise the best implementation the CPU supports (detected once).
Kernel ActiveKernel();

/// Whether this build/CPU can run `kernel` (kScalar is always available).
bool KernelAvailable(Kernel kernel);

/// Pins dispatch to `kernel` for tests. Returns false (and leaves dispatch
/// unchanged) if the kernel is unavailable on this CPU, so tests can skip.
bool SetKernelForTesting(Kernel kernel);

/// Restores CPUID-based dispatch.
void ClearKernelOverrideForTesting();

/// Human-readable kernel name ("scalar", "avx2").
const char* KernelName(Kernel kernel);

/// Sums exp(-0.5 * ((x - samples[i]) * inv_bandwidth)^2) over i in [0, n).
/// `samples` need not be aligned or sorted; the caller owns the cutoff
/// windowing. All inputs must be finite. Bit-identical across kernels.
double GaussianWindowSum(const double* samples, size_t n, double x,
                         double inv_bandwidth);

}  // namespace fixy::stats::simd

#endif  // FIXY_STATS_SIMD_H_
