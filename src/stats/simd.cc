#include "stats/simd.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FIXY_SIMD_X86 1
#else
#define FIXY_SIMD_X86 0
#endif

namespace fixy::stats::simd {

namespace {

// exp(arg) for arg in roughly [-708, 0] — the Gaussian kernel argument is
// -0.5*u^2 with |u| <= 8 (the KDE cutoff), so the working range is [-32, 0].
//
// Reduction: arg = n*ln2 + r with n = round(arg*log2(e)) captured through
// the 1.5*2^52 shifter trick, ln2 split hi/lo (Cody-Waite) so r is exact to
// ~2^-60; |r| <= ln2/2. Core: degree-13 Taylor series in Horner form, every
// step a fused multiply-add. Reassembly: 2^n built directly in the exponent
// bits (n >= -1022 always holds here). The scalar and AVX2 versions below
// perform this exact op sequence — std::fma and vfmadd both round once, so
// the two paths agree bit-for-bit on every input.
constexpr double kLog2E = 1.4426950408889634074;
constexpr double kShifter = 6755399441055744.0;  // 1.5 * 2^52
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;

constexpr double kC2 = 1.0 / 2.0;
constexpr double kC3 = 1.0 / 6.0;
constexpr double kC4 = 1.0 / 24.0;
constexpr double kC5 = 1.0 / 120.0;
constexpr double kC6 = 1.0 / 720.0;
constexpr double kC7 = 1.0 / 5040.0;
constexpr double kC8 = 1.0 / 40320.0;
constexpr double kC9 = 1.0 / 362880.0;
constexpr double kC10 = 1.0 / 3628800.0;
constexpr double kC11 = 1.0 / 39916800.0;
constexpr double kC12 = 1.0 / 479001600.0;
constexpr double kC13 = 1.0 / 6227020800.0;

inline double PolyExp(double arg) {
  const double t = std::fma(arg, kLog2E, kShifter);
  const double n_d = t - kShifter;
  double r = std::fma(n_d, -kLn2Hi, arg);
  r = std::fma(n_d, -kLn2Lo, r);
  double p = kC13;
  p = std::fma(p, r, kC12);
  p = std::fma(p, r, kC11);
  p = std::fma(p, r, kC10);
  p = std::fma(p, r, kC9);
  p = std::fma(p, r, kC8);
  p = std::fma(p, r, kC7);
  p = std::fma(p, r, kC6);
  p = std::fma(p, r, kC5);
  p = std::fma(p, r, kC4);
  p = std::fma(p, r, kC3);
  p = std::fma(p, r, kC2);
  p = std::fma(p, r, 1.0);
  p = std::fma(p, r, 1.0);
  const int64_t n = static_cast<int64_t>(std::bit_cast<uint64_t>(t)) -
                    static_cast<int64_t>(std::bit_cast<uint64_t>(kShifter));
  const double scale =
      std::bit_cast<double>(static_cast<uint64_t>(n + 1023) << 52);
  return p * scale;
}

inline double KernelTerm(double x, double sample, double inv_bandwidth) {
  const double u = (x - sample) * inv_bandwidth;
  const double t = u * u;
  return PolyExp(t * -0.5);
}

// Both window sums stripe the quads across four lane accumulators
// (lane j takes elements 4i+j), reduce as (a0+a1)+(a2+a3), then fold the
// tail in sequentially — the identical association in both paths.
double WindowSumScalar(const double* samples, size_t n, double x,
                       double inv_bandwidth) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += KernelTerm(x, samples[i], inv_bandwidth);
    acc1 += KernelTerm(x, samples[i + 1], inv_bandwidth);
    acc2 += KernelTerm(x, samples[i + 2], inv_bandwidth);
    acc3 += KernelTerm(x, samples[i + 3], inv_bandwidth);
  }
  double sum = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) {
    sum += KernelTerm(x, samples[i], inv_bandwidth);
  }
  return sum;
}

#if FIXY_SIMD_X86

__attribute__((target("avx2,fma"))) __m256d PolyExp4(__m256d arg) {
  const __m256d shifter = _mm256_set1_pd(kShifter);
  const __m256d t = _mm256_fmadd_pd(arg, _mm256_set1_pd(kLog2E), shifter);
  const __m256d n_d = _mm256_sub_pd(t, shifter);
  __m256d r = _mm256_fnmadd_pd(n_d, _mm256_set1_pd(kLn2Hi), arg);
  r = _mm256_fnmadd_pd(n_d, _mm256_set1_pd(kLn2Lo), r);
  __m256d p = _mm256_set1_pd(kC13);
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC12));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC11));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC10));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC9));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC8));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC7));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC6));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC4));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC3));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kC2));
  const __m256d one = _mm256_set1_pd(1.0);
  p = _mm256_fmadd_pd(p, r, one);
  p = _mm256_fmadd_pd(p, r, one);
  const __m256i n = _mm256_sub_epi64(_mm256_castpd_si256(t),
                                     _mm256_castpd_si256(shifter));
  const __m256d scale = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(n, _mm256_set1_epi64x(1023)), 52));
  return _mm256_mul_pd(p, scale);
}

__attribute__((target("avx2,fma"))) double WindowSumAvx2(
    const double* samples, size_t n, double x, double inv_bandwidth) {
  const __m256d xv = _mm256_set1_pd(x);
  const __m256d inv_bw = _mm256_set1_pd(inv_bandwidth);
  const __m256d half_neg = _mm256_set1_pd(-0.5);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(samples + i);
    const __m256d u = _mm256_mul_pd(_mm256_sub_pd(xv, s), inv_bw);
    const __m256d t = _mm256_mul_pd(u, u);
    acc = _mm256_add_pd(acc, PolyExp4(_mm256_mul_pd(t, half_neg)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    sum += KernelTerm(x, samples[i], inv_bandwidth);
  }
  return sum;
}

#endif  // FIXY_SIMD_X86

Kernel DetectKernel() {
#if FIXY_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Kernel::kAvx2;
  }
#endif
  return Kernel::kScalar;
}

// -1 = no override; otherwise the pinned Kernel value.
std::atomic<int> g_kernel_override{-1};

}  // namespace

Kernel ActiveKernel() {
  const int override_value =
      g_kernel_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return static_cast<Kernel>(override_value);
  static const Kernel detected = DetectKernel();
  return detected;
}

bool KernelAvailable(Kernel kernel) {
  if (kernel == Kernel::kScalar) return true;
  return DetectKernel() == kernel;
}

bool SetKernelForTesting(Kernel kernel) {
  if (!KernelAvailable(kernel)) return false;
  g_kernel_override.store(static_cast<int>(kernel),
                          std::memory_order_relaxed);
  return true;
}

void ClearKernelOverrideForTesting() {
  g_kernel_override.store(-1, std::memory_order_relaxed);
}

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

double GaussianWindowSum(const double* samples, size_t n, double x,
                         double inv_bandwidth) {
#if FIXY_SIMD_X86
  if (ActiveKernel() == Kernel::kAvx2) {
    return WindowSumAvx2(samples, n, x, inv_bandwidth);
  }
#endif
  return WindowSumScalar(samples, n, x, inv_bandwidth);
}

}  // namespace fixy::stats::simd
