#include "stats/gaussian.h"

#include <cmath>

#include "common/string_util.h"
#include "stats/summary.h"

namespace fixy::stats {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}  // namespace

Result<Gaussian> Gaussian::Create(double mean, double stddev) {
  if (!std::isfinite(mean) || !std::isfinite(stddev) || stddev <= 0.0) {
    return Status::InvalidArgument(
        "Gaussian requires finite mean and positive stddev");
  }
  return Gaussian(mean, stddev);
}

Result<Gaussian> Gaussian::Fit(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("Gaussian fit requires samples");
  }
  for (double s : samples) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("Gaussian sample is not finite");
    }
  }
  const double mean = Mean(samples);
  double stddev = Stddev(samples);
  if (stddev <= 0.0) {
    stddev = std::max(1e-6, std::abs(mean) * 0.01);
  }
  return Gaussian(mean, stddev);
}

Result<Gaussian> Gaussian::FitFromMoments(uint64_t n, double sum,
                                          double sum_sq) {
  if (n == 0) {
    return Status::InvalidArgument("Gaussian fit requires samples");
  }
  if (!std::isfinite(sum) || !std::isfinite(sum_sq)) {
    return Status::InvalidArgument("Gaussian moment sums are not finite");
  }
  const double dn = static_cast<double>(n);
  const double mean = sum / dn;
  double stddev = 0.0;
  if (n > 1) {
    const double variance = (sum_sq - sum * sum / dn) / (dn - 1.0);
    if (variance > 0.0) stddev = std::sqrt(variance);
  }
  if (stddev <= 0.0) {
    stddev = std::max(1e-6, std::abs(mean) * 0.01);
  }
  return Gaussian(mean, stddev);
}

double Gaussian::Density(double x) const {
  const double u = (x - mean_) / stddev_;
  return kInvSqrt2Pi / stddev_ * std::exp(-0.5 * u * u);
}

double Gaussian::ModeDensity() const { return kInvSqrt2Pi / stddev_; }

std::string Gaussian::ToString() const {
  return StrFormat("Gaussian(mean=%s, stddev=%s)",
                   DoubleToString(mean_, 4).c_str(),
                   DoubleToString(stddev_, 4).c_str());
}

}  // namespace fixy::stats
