// Gaussian kernel density estimation — the paper's default feature
// distribution estimator ("By default, Fixy uses a kernel density estimator
// (KDE) to learn feature distributions", Section 5.2).
#ifndef FIXY_STATS_KDE_H_
#define FIXY_STATS_KDE_H_

#include <atomic>
#include <span>
#include <vector>

#include "common/result.h"
#include "stats/distribution.h"

namespace fixy::stats {

/// Rule for choosing the kernel bandwidth from the sample.
enum class BandwidthRule {
  /// Scott's rule: h = sigma * n^(-1/5).
  kScott,
  /// Silverman's rule of thumb:
  /// h = 0.9 * min(sigma, IQR/1.34) * n^(-1/5).
  kSilverman,
};

/// A univariate Gaussian kernel density estimator.
class GaussianKde final : public Distribution {
 public:
  /// Fits a KDE to `samples`. Errors:
  ///  - InvalidArgument if `samples` is empty or contains non-finite values.
  /// Degenerate samples (zero spread) get a small positive fallback
  /// bandwidth so the density stays well defined.
  static Result<GaussianKde> Fit(std::vector<double> samples,
                                 BandwidthRule rule = BandwidthRule::kScott);

  /// Fits with an explicit bandwidth. Errors if bandwidth <= 0 or samples
  /// empty / non-finite.
  static Result<GaussianKde> FitWithBandwidth(std::vector<double> samples,
                                              double bandwidth);

  double Density(double x) const override;
  /// Batch evaluation: identical results to calling Density per element,
  /// but the kernel windows are found with one monotone sweep over the
  /// sorted samples instead of a binary search per query — the path factor
  /// scoring and the constructor's mode scan use.
  void DensityBatch(std::span<const double> xs,
                    std::span<double> out) const override;
  /// Exact mode density (the maximum of Density over the samples),
  /// computed lazily on first use and cached. Fitting a KDE is therefore
  /// cheap — a sort and a bandwidth — and only distributions that actually
  /// score pay for the mode search. Thread-safe: concurrent first calls
  /// race benignly (ExactModeDensity is deterministic, so every racer
  /// stores the same bits).
  double ModeDensity() const override;
  bool CostlyDensity() const override { return true; }
  std::string ToString() const override;

  double bandwidth() const { return bandwidth_; }
  size_t sample_count() const { return samples_.size(); }
  /// Fitted samples, sorted ascending (exposed for serialization).
  const std::vector<double>& samples() const { return samples_; }

  /// The cached mode density is copied/moved along with the samples, so a
  /// distribution that already paid for the mode search never re-runs it.
  GaussianKde(const GaussianKde& other);
  GaussianKde(GaussianKde&& other) noexcept;
  GaussianKde& operator=(const GaussianKde& other);
  GaussianKde& operator=(GaussianKde&& other) noexcept;

 private:
  GaussianKde(std::vector<double> samples, double bandwidth);

  /// Density without the stats.kde_evals count — Density and DensityBatch
  /// each record their own (batched) count exactly once per query.
  double DensityUncounted(double x) const;

  /// Kernel-window sum for queries in ascending order; `lo`/`hi` are the
  /// sliding window bounds carried across queries. The sum itself runs on
  /// the dispatched SIMD kernel (stats/simd.h).
  double WindowedSum(double x, size_t* lo, size_t* hi) const;

  /// max over samples of the density at that sample — the same value a
  /// full DensityBatch(samples_) scan produces, found by bounding each
  /// sample's density from above with annulus counts and evaluating
  /// exactly only the candidates whose bound beats the best exact density
  /// seen so far. Cuts the mode search on large KDEs from O(n * window)
  /// kernel evaluations to O(n) bounds plus a handful of exact ones.
  double ExactModeDensity() const;

  std::vector<double> samples_;  // sorted ascending
  double bandwidth_ = 0.0;
  /// Hot-path constants, fixed at construction: 1/h and the shared factor
  /// 1/(sqrt(2*pi) * h * n) applied to every kernel sum.
  double inv_bandwidth_ = 0.0;
  double norm_ = 0.0;
  /// Lazily-computed ModeDensity() cache; negative means "not computed
  /// yet" (a real mode density is at least one kernel's peak, so it is
  /// always positive). Atomic because scoring is multi-threaded and the
  /// first callers may race; they all store identical bits.
  mutable std::atomic<double> mode_density_{-1.0};
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_KDE_H_
