// Gaussian kernel density estimation — the paper's default feature
// distribution estimator ("By default, Fixy uses a kernel density estimator
// (KDE) to learn feature distributions", Section 5.2).
#ifndef FIXY_STATS_KDE_H_
#define FIXY_STATS_KDE_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "stats/distribution.h"

namespace fixy::stats {

/// Rule for choosing the kernel bandwidth from the sample.
enum class BandwidthRule {
  /// Scott's rule: h = sigma * n^(-1/5).
  kScott,
  /// Silverman's rule of thumb:
  /// h = 0.9 * min(sigma, IQR/1.34) * n^(-1/5).
  kSilverman,
};

/// A univariate Gaussian kernel density estimator.
class GaussianKde final : public Distribution {
 public:
  /// Fits a KDE to `samples`. Errors:
  ///  - InvalidArgument if `samples` is empty or contains non-finite values.
  /// Degenerate samples (zero spread) get a small positive fallback
  /// bandwidth so the density stays well defined.
  static Result<GaussianKde> Fit(std::vector<double> samples,
                                 BandwidthRule rule = BandwidthRule::kScott);

  /// Fits with an explicit bandwidth. Errors if bandwidth <= 0 or samples
  /// empty / non-finite.
  static Result<GaussianKde> FitWithBandwidth(std::vector<double> samples,
                                              double bandwidth);

  double Density(double x) const override;
  /// Batch evaluation: identical results to calling Density per element,
  /// but the kernel windows are found with one monotone sweep over the
  /// sorted samples instead of a binary search per query — the path factor
  /// scoring and the constructor's mode scan use.
  void DensityBatch(std::span<const double> xs,
                    std::span<double> out) const override;
  double ModeDensity() const override { return mode_density_; }
  bool CostlyDensity() const override { return true; }
  std::string ToString() const override;

  double bandwidth() const { return bandwidth_; }
  size_t sample_count() const { return samples_.size(); }
  /// Fitted samples, sorted ascending (exposed for serialization).
  const std::vector<double>& samples() const { return samples_; }

 private:
  GaussianKde(std::vector<double> samples, double bandwidth);

  /// Density without the stats.kde_evals count — Density and DensityBatch
  /// each record their own (batched) count exactly once per query.
  double DensityUncounted(double x) const;

  /// Kernel-window sum for queries in ascending order; `lo`/`hi` are the
  /// sliding window bounds carried across queries. The sum itself runs on
  /// the dispatched SIMD kernel (stats/simd.h).
  double WindowedSum(double x, size_t* lo, size_t* hi) const;

  std::vector<double> samples_;  // sorted ascending
  double bandwidth_ = 0.0;
  /// Hot-path constants, fixed at construction: 1/h and the shared factor
  /// 1/(sqrt(2*pi) * h * n) applied to every kernel sum.
  double inv_bandwidth_ = 0.0;
  double norm_ = 0.0;
  double mode_density_ = 0.0;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_KDE_H_
