// Mergeable sufficient statistics for incremental distribution learning.
//
// The offline learner (core/learner.h) fits each feature distribution from
// a stream of scalar values. To make "one new scene arrived" cost one
// scene instead of a full refit, the learner keeps, per feature and class,
// the sufficient statistics of the stream — and re-materializes the
// distribution from them. The three primitives here cover the estimator
// families:
//
//  - MomentStats: n, Σx, Σx² — everything a Gaussian fit needs.
//  - ValueCounts: an exact value→count multiset — histogram and
//    categorical fits over Expand() are order-insensitive, so a fold of
//    new values yields the byte-identical distribution a full refit would.
//  - ValueReservoir: a bounded uniform sample for KDE, with counter-based
//    randomness so it is resumable from its serialized state.
//
// All three fold one value at a time (Add) and two stat sets of the same
// shape combine with Merge; DESIGN.md §14 documents the merge guarantees.
#ifndef FIXY_STATS_SUFFICIENT_H_
#define FIXY_STATS_SUFFICIENT_H_

#include <cstdint>
#include <map>
#include <vector>

namespace fixy::stats {

/// Default ValueReservoir capacity: large enough that every dataset in the
/// paper's scale fits entirely (reservoir == full sample, KDE fit exact),
/// small enough to bound model size for unbounded streams.
inline constexpr uint64_t kDefaultReservoirCapacity = 65536;

/// Running first and second moments of a value stream.
struct MomentStats {
  uint64_t n = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void Add(double x);
  void Merge(const MomentStats& other);

  bool operator==(const MomentStats&) const = default;
};

/// An exact multiset of observed values (value → occurrence count).
/// Order-free: streams with the same values in any order produce identical
/// counts, so estimators fit from Expand() are byte-identical however the
/// values arrived. Memory is O(distinct values) — intended for the
/// discrete-ish features (track counts, buckets) the histogram and
/// categorical estimators serve.
struct ValueCounts {
  std::map<double, uint64_t> counts;
  uint64_t total = 0;

  void Add(double x);
  void Merge(const ValueCounts& other);

  /// The multiset as a sorted-ascending vector of `total` values.
  std::vector<double> Expand() const;

  bool operator==(const ValueCounts&) const = default;
};

/// Bounded uniform sample of an unbounded value stream: Algorithm R with
/// counter-based randomness. Item k (0-based) replaces slot
/// SplitMix64(seed ^ k) % (k + 1) when that index lands inside the
/// reservoir. All randomness derives from (seed, k), so the reservoir is
/// RESUMABLE: one restored from its serialized (items, seen, capacity,
/// seed) and fed the rest of a stream ends byte-identical to a reservoir
/// that saw the whole stream in one run. While seen <= capacity the
/// reservoir holds every value in arrival order, so a KDE fit over it is
/// exactly the full-sample fit.
struct ValueReservoir {
  std::vector<double> items;
  /// Total values ever offered (>= items.size()).
  uint64_t seen = 0;
  uint64_t capacity = kDefaultReservoirCapacity;
  uint64_t seed = 0;

  void Add(double x);

  bool operator==(const ValueReservoir&) const = default;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_SUFFICIENT_H_
