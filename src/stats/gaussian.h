// Parametric Gaussian distribution; the cheap alternative estimator used in
// the ablation benches and in tests as a ground-truth reference.
#ifndef FIXY_STATS_GAUSSIAN_H_
#define FIXY_STATS_GAUSSIAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "stats/distribution.h"

namespace fixy::stats {

/// A univariate normal distribution N(mean, stddev^2).
class Gaussian final : public Distribution {
 public:
  /// Errors: InvalidArgument if stddev <= 0 or parameters non-finite.
  static Result<Gaussian> Create(double mean, double stddev);

  /// Maximum-likelihood fit. Degenerate samples (zero spread) get a small
  /// positive stddev. Errors: InvalidArgument for empty/non-finite samples.
  static Result<Gaussian> Fit(const std::vector<double>& samples);

  /// Fits from mergeable sufficient statistics (n, Σx, Σx²) — the
  /// incremental learner's path (stats/sufficient.h). Uses the same
  /// sample-variance (n-1) convention and the same degenerate-spread
  /// fallback as Fit(); results match Fit() up to floating-point
  /// reassociation of the sums. Errors: InvalidArgument for n == 0 or
  /// non-finite sums.
  static Result<Gaussian> FitFromMoments(uint64_t n, double sum,
                                         double sum_sq);

  double Density(double x) const override;
  double ModeDensity() const override;
  std::string ToString() const override;

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  Gaussian(double mean, double stddev) : mean_(mean), stddev_(stddev) {}

  double mean_;
  double stddev_;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_GAUSSIAN_H_
