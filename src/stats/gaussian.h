// Parametric Gaussian distribution; the cheap alternative estimator used in
// the ablation benches and in tests as a ground-truth reference.
#ifndef FIXY_STATS_GAUSSIAN_H_
#define FIXY_STATS_GAUSSIAN_H_

#include <vector>

#include "common/result.h"
#include "stats/distribution.h"

namespace fixy::stats {

/// A univariate normal distribution N(mean, stddev^2).
class Gaussian final : public Distribution {
 public:
  /// Errors: InvalidArgument if stddev <= 0 or parameters non-finite.
  static Result<Gaussian> Create(double mean, double stddev);

  /// Maximum-likelihood fit. Degenerate samples (zero spread) get a small
  /// positive stddev. Errors: InvalidArgument for empty/non-finite samples.
  static Result<Gaussian> Fit(const std::vector<double>& samples);

  double Density(double x) const override;
  double ModeDensity() const override;
  std::string ToString() const override;

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  Gaussian(double mean, double stddev) : mean_(mean), stddev_(stddev) {}

  double mean_;
  double stddev_;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_GAUSSIAN_H_
