#include "stats/sufficient.h"

#include "common/random.h"

namespace fixy::stats {

void MomentStats::Add(double x) {
  ++n;
  sum += x;
  sum_sq += x * x;
}

void MomentStats::Merge(const MomentStats& other) {
  n += other.n;
  sum += other.sum;
  sum_sq += other.sum_sq;
}

void ValueCounts::Add(double x) {
  ++counts[x];
  ++total;
}

void ValueCounts::Merge(const ValueCounts& other) {
  for (const auto& [value, count] : other.counts) {
    counts[value] += count;
  }
  total += other.total;
}

std::vector<double> ValueCounts::Expand() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(total));
  for (const auto& [value, count] : counts) {
    out.insert(out.end(), static_cast<size_t>(count), value);
  }
  return out;
}

void ValueReservoir::Add(double x) {
  const uint64_t k = seen++;
  if (k < capacity) {
    items.push_back(x);
    return;
  }
  const uint64_t j = SplitMix64(seed ^ k).Next() % (k + 1);
  if (j < capacity) {
    items[static_cast<size_t>(j)] = x;
  }
}

}  // namespace fixy::stats
