#include "stats/discrete.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace fixy::stats {

Result<Bernoulli> Bernoulli::Create(double p_one) {
  if (!std::isfinite(p_one) || p_one < 0.0 || p_one > 1.0) {
    return Status::InvalidArgument("Bernoulli p must be in [0, 1]");
  }
  return Bernoulli(p_one);
}

Result<Bernoulli> Bernoulli::Fit(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("Bernoulli fit requires samples");
  }
  size_t ones = 0;
  for (double s : samples) {
    if (s >= 0.5) ++ones;
  }
  // Add-one smoothing keeps both outcomes representable.
  const double p =
      (static_cast<double>(ones) + 1.0) / (static_cast<double>(samples.size()) + 2.0);
  return Bernoulli(p);
}

double Bernoulli::Density(double x) const {
  const long v = std::lround(x);
  if (v == 1) return p_one_;
  if (v == 0) return 1.0 - p_one_;
  return 0.0;
}

double Bernoulli::ModeDensity() const { return std::max(p_one_, 1.0 - p_one_); }

std::string Bernoulli::ToString() const {
  return StrFormat("Bernoulli(p=%s)", DoubleToString(p_one_, 4).c_str());
}

Categorical::Categorical(std::map<long, double> mass)
    : mass_(std::move(mass)) {
  for (const auto& [value, p] : mass_) {
    (void)value;
    mode_ = std::max(mode_, p);
  }
}

Result<Categorical> Categorical::Fit(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("Categorical fit requires samples");
  }
  std::map<long, double> counts;
  for (double s : samples) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("Categorical sample is not finite");
    }
    counts[std::lround(s)] += 1.0;
  }
  // Add-one smoothing over the observed support.
  const double total = static_cast<double>(samples.size()) +
                       static_cast<double>(counts.size());
  for (auto& [value, count] : counts) {
    (void)value;
    count = (count + 1.0) / total;
  }
  return Categorical(std::move(counts));
}

Result<Categorical> Categorical::FromMass(std::map<long, double> mass) {
  if (mass.empty()) {
    return Status::InvalidArgument("categorical mass function is empty");
  }
  double total = 0.0;
  for (const auto& [value, p] : mass) {
    (void)value;
    if (!std::isfinite(p) || p < 0.0) {
      return Status::InvalidArgument("categorical mass must be >= 0");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("categorical masses must sum to 1");
  }
  return Categorical(std::move(mass));
}

double Categorical::Density(double x) const { return Mass(std::lround(x)); }

double Categorical::ModeDensity() const { return mode_; }

double Categorical::Mass(long v) const {
  const auto it = mass_.find(v);
  return it == mass_.end() ? 0.0 : it->second;
}

std::string Categorical::ToString() const {
  return StrFormat("Categorical(support=%zu)", mass_.size());
}

}  // namespace fixy::stats
