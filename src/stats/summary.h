// Descriptive statistics used by the distribution fitters and the
// evaluation harness.
#ifndef FIXY_STATS_SUMMARY_H_
#define FIXY_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace fixy::stats {

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& xs);

/// sqrt(Variance).
double Stddev(const std::vector<double>& xs);

/// Linear-interpolation quantile of a *sorted ascending* sample.
/// q is clamped to [0, 1]. Precondition: xs non-empty.
double SortedQuantile(const std::vector<double>& sorted, double q);

/// Quantile of an unsorted sample (copies and sorts internally).
double Quantile(std::vector<double> xs, double q);

/// Summary of a sample in one pass-friendly struct.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary Summarize(std::vector<double> xs);

/// Empirical CDF of a fitted sample: fraction of samples <= x.
class EmpiricalCdf {
 public:
  /// Precondition: xs non-empty.
  explicit EmpiricalCdf(std::vector<double> xs);

  /// P(X <= x) under the empirical distribution.
  double operator()(double x) const;

  size_t sample_count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_SUMMARY_H_
