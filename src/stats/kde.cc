#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "stats/simd.h"
#include "stats/summary.h"

namespace fixy::stats {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

// Bandwidth below which the KDE would be numerically useless.
constexpr double kMinBandwidth = 1e-6;

Status ValidateSamples(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  for (double s : samples) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("KDE sample is not finite");
    }
  }
  return Status::Ok();
}

double SelectBandwidth(const std::vector<double>& sorted, BandwidthRule rule) {
  const double n = static_cast<double>(sorted.size());
  const double sigma = Stddev(sorted);
  double spread = sigma;
  if (rule == BandwidthRule::kSilverman) {
    const double iqr =
        SortedQuantile(sorted, 0.75) - SortedQuantile(sorted, 0.25);
    if (iqr > 0.0) spread = std::min(sigma, iqr / 1.34);
    spread *= 0.9;
  }
  double bw = spread * std::pow(n, -0.2);
  if (bw < kMinBandwidth) {
    // Degenerate sample (all values equal or nearly so): fall back to a
    // bandwidth proportional to the magnitude of the data, so the density
    // is a narrow bump at the repeated value.
    const double scale = std::abs(sorted.front()) + std::abs(sorted.back());
    bw = std::max(kMinBandwidth, 0.01 * scale);
  }
  return bw;
}

}  // namespace

GaussianKde::GaussianKde(std::vector<double> samples, double bandwidth)
    : samples_(std::move(samples)), bandwidth_(bandwidth) {
  // Both factories validate before constructing, but the invariants are
  // load-bearing (empty samples make norm_ infinite, a non-positive or
  // non-finite bandwidth poisons every density), so they are re-checked
  // here where they are relied on.
  FIXY_CHECK_MSG(!samples_.empty(), "GaussianKde constructed with no samples");
  FIXY_CHECK_MSG(std::isfinite(bandwidth_) && bandwidth_ > 0.0,
                 "GaussianKde constructed with invalid bandwidth %f",
                 bandwidth_);
  std::sort(samples_.begin(), samples_.end());
  inv_bandwidth_ = 1.0 / bandwidth_;
  norm_ = kInvSqrt2Pi /
          (bandwidth_ * static_cast<double>(samples_.size()));
  FIXY_CHECK_MSG(std::isfinite(norm_) && norm_ > 0.0,
                 "GaussianKde normalization is not finite");
  // For a Gaussian KDE the mode is near one of the sample points; evaluating
  // the density at every sample gives an accurate normalization constant.
  // The samples are sorted, so the batch path scans them with one sliding
  // window instead of a binary search per sample.
  std::vector<double> densities(samples_.size());
  DensityBatch(samples_, densities);
  double max_density = 0.0;
  for (double d : densities) {
    max_density = std::max(max_density, d);
  }
  mode_density_ = max_density;
}

Result<GaussianKde> GaussianKde::Fit(std::vector<double> samples,
                                     BandwidthRule rule) {
  FIXY_RETURN_IF_ERROR(ValidateSamples(samples));
  std::sort(samples.begin(), samples.end());
  const double bw = SelectBandwidth(samples, rule);
  return GaussianKde(std::move(samples), bw);
}

Result<GaussianKde> GaussianKde::FitWithBandwidth(std::vector<double> samples,
                                                  double bandwidth) {
  FIXY_RETURN_IF_ERROR(ValidateSamples(samples));
  if (!(bandwidth >= kMinBandwidth) || !std::isfinite(bandwidth)) {
    // The lower bound also rejects denormal bandwidths whose reciprocal
    // (or normalization constant) would overflow to infinity — reachable
    // from a hand-edited model file via model_io, so this must be a
    // Status, not a CHECK.
    return Status::InvalidArgument(StrFormat(
        "KDE bandwidth must be a finite value >= %g", kMinBandwidth));
  }
  return GaussianKde(std::move(samples), bandwidth);
}

double GaussianKde::Density(double x) const {
  obs::Count("stats.kde_evals");
  return DensityUncounted(x);
}

double GaussianKde::DensityUncounted(double x) const {
  // Non-finite queries have zero density by convention; letting them into
  // lower_bound would break the comparator's ordering requirements.
  if (!std::isfinite(x)) return 0.0;
  // Samples are sorted, so kernels further than 8 bandwidths contribute
  // less than 1e-14 of their mass and can be skipped.
  const double cutoff = 8.0 * bandwidth_;
  const size_t lo = static_cast<size_t>(
      std::lower_bound(samples_.begin(), samples_.end(), x - cutoff) -
      samples_.begin());
  size_t lo_cursor = lo;
  size_t hi_cursor = lo;
  return WindowedSum(x, &lo_cursor, &hi_cursor) * norm_;
}

void GaussianKde::DensityBatch(std::span<const double> xs,
                               std::span<double> out) const {
  FIXY_CHECK(xs.size() == out.size());
  // One batched count per query — the same total the per-query path would
  // record (non-finite queries count too: Density() counts them).
  obs::Count("stats.kde_evals", xs.size());
  size_t lo = 0;
  size_t hi = 0;
  // is_sorted on a NaN-bearing range would violate strict weak ordering,
  // so the finiteness scan comes first.
  const bool all_finite = std::all_of(
      xs.begin(), xs.end(), [](double x) { return std::isfinite(x); });
  if (all_finite && std::is_sorted(xs.begin(), xs.end())) {
    for (size_t i = 0; i < xs.size(); ++i) {
      out[i] = WindowedSum(xs[i], &lo, &hi) * norm_;
    }
    return;
  }
  // Otherwise evaluate the finite queries in value order through an index
  // permutation so the window still slides monotonically, and give
  // non-finite queries zero density directly (the Density() convention).
  // The permutation scratch is reused across calls: feature scoring hits
  // this path once per (distribution, track), so a fresh allocation per
  // call was measurable heap churn.
  thread_local std::vector<size_t> order;
  order.clear();
  order.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    if (std::isfinite(xs[i])) {
      order.push_back(i);
    } else {
      out[i] = 0.0;
    }
  }
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  for (size_t idx : order) {
    out[idx] = WindowedSum(xs[idx], &lo, &hi) * norm_;
  }
}

double GaussianKde::WindowedSum(double x, size_t* lo, size_t* hi) const {
  // Advances [*lo, *hi) to the window of samples within the 8-bandwidth
  // cutoff of `x` — the same bounds lower_bound/upper_bound would find —
  // then hands the contiguous window to the dispatched kernel.
  const double cutoff = 8.0 * bandwidth_;
  const double lo_value = x - cutoff;
  const double hi_value = x + cutoff;
  const size_t n = samples_.size();
  while (*lo < n && samples_[*lo] < lo_value) ++*lo;
  if (*hi < *lo) *hi = *lo;
  while (*hi < n && samples_[*hi] <= hi_value) ++*hi;
  return simd::GaussianWindowSum(samples_.data() + *lo, *hi - *lo, x,
                                 inv_bandwidth_);
}

std::string GaussianKde::ToString() const {
  return StrFormat("KDE(n=%zu, bw=%s)", samples_.size(),
                   DoubleToString(bandwidth_, 4).c_str());
}

}  // namespace fixy::stats
