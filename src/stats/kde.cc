#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "stats/summary.h"

namespace fixy::stats {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

// Bandwidth below which the KDE would be numerically useless.
constexpr double kMinBandwidth = 1e-6;

Status ValidateSamples(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  for (double s : samples) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("KDE sample is not finite");
    }
  }
  return Status::Ok();
}

double SelectBandwidth(const std::vector<double>& sorted, BandwidthRule rule) {
  const double n = static_cast<double>(sorted.size());
  const double sigma = Stddev(sorted);
  double spread = sigma;
  if (rule == BandwidthRule::kSilverman) {
    const double iqr =
        SortedQuantile(sorted, 0.75) - SortedQuantile(sorted, 0.25);
    if (iqr > 0.0) spread = std::min(sigma, iqr / 1.34);
    spread *= 0.9;
  }
  double bw = spread * std::pow(n, -0.2);
  if (bw < kMinBandwidth) {
    // Degenerate sample (all values equal or nearly so): fall back to a
    // bandwidth proportional to the magnitude of the data, so the density
    // is a narrow bump at the repeated value.
    const double scale = std::abs(sorted.front()) + std::abs(sorted.back());
    bw = std::max(kMinBandwidth, 0.01 * scale);
  }
  return bw;
}

}  // namespace

GaussianKde::GaussianKde(std::vector<double> samples, double bandwidth)
    : samples_(std::move(samples)), bandwidth_(bandwidth) {
  std::sort(samples_.begin(), samples_.end());
  // For a Gaussian KDE the mode is near one of the sample points; evaluating
  // the density at every sample gives an accurate normalization constant.
  double max_density = 0.0;
  for (double s : samples_) {
    max_density = std::max(max_density, Density(s));
  }
  mode_density_ = max_density;
}

Result<GaussianKde> GaussianKde::Fit(std::vector<double> samples,
                                     BandwidthRule rule) {
  FIXY_RETURN_IF_ERROR(ValidateSamples(samples));
  std::sort(samples.begin(), samples.end());
  const double bw = SelectBandwidth(samples, rule);
  return GaussianKde(std::move(samples), bw);
}

Result<GaussianKde> GaussianKde::FitWithBandwidth(std::vector<double> samples,
                                                  double bandwidth) {
  FIXY_RETURN_IF_ERROR(ValidateSamples(samples));
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument("KDE bandwidth must be positive");
  }
  return GaussianKde(std::move(samples), bandwidth);
}

double GaussianKde::Density(double x) const {
  // Samples are sorted, so kernels further than 8 bandwidths contribute
  // less than 1e-14 of their mass and can be skipped.
  const double cutoff = 8.0 * bandwidth_;
  const auto lo = std::lower_bound(samples_.begin(), samples_.end(),
                                   x - cutoff);
  const auto hi = std::upper_bound(lo, samples_.end(), x + cutoff);
  double sum = 0.0;
  for (auto it = lo; it != hi; ++it) {
    const double u = (x - *it) / bandwidth_;
    sum += std::exp(-0.5 * u * u);
  }
  return sum * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(samples_.size()));
}

std::string GaussianKde::ToString() const {
  return StrFormat("KDE(n=%zu, bw=%s)", samples_.size(),
                   DoubleToString(bandwidth_, 4).c_str());
}

}  // namespace fixy::stats
