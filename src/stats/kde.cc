#include "stats/kde.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "stats/simd.h"
#include "stats/summary.h"

namespace fixy::stats {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

// Bandwidth below which the KDE would be numerically useless.
constexpr double kMinBandwidth = 1e-6;

Status ValidateSamples(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  for (double s : samples) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("KDE sample is not finite");
    }
  }
  return Status::Ok();
}

double SelectBandwidth(const std::vector<double>& sorted, BandwidthRule rule) {
  const double n = static_cast<double>(sorted.size());
  const double sigma = Stddev(sorted);
  double spread = sigma;
  if (rule == BandwidthRule::kSilverman) {
    const double iqr =
        SortedQuantile(sorted, 0.75) - SortedQuantile(sorted, 0.25);
    if (iqr > 0.0) spread = std::min(sigma, iqr / 1.34);
    spread *= 0.9;
  }
  double bw = spread * std::pow(n, -0.2);
  if (bw < kMinBandwidth) {
    // Degenerate sample (all values equal or nearly so): fall back to a
    // bandwidth proportional to the magnitude of the data, so the density
    // is a narrow bump at the repeated value.
    const double scale = std::abs(sorted.front()) + std::abs(sorted.back());
    bw = std::max(kMinBandwidth, 0.01 * scale);
  }
  return bw;
}

}  // namespace

GaussianKde::GaussianKde(std::vector<double> samples, double bandwidth)
    : samples_(std::move(samples)), bandwidth_(bandwidth) {
  // Both factories validate before constructing, but the invariants are
  // load-bearing (empty samples make norm_ infinite, a non-positive or
  // non-finite bandwidth poisons every density), so they are re-checked
  // here where they are relied on.
  FIXY_CHECK_MSG(!samples_.empty(), "GaussianKde constructed with no samples");
  FIXY_CHECK_MSG(std::isfinite(bandwidth_) && bandwidth_ > 0.0,
                 "GaussianKde constructed with invalid bandwidth %f",
                 bandwidth_);
  std::sort(samples_.begin(), samples_.end());
  inv_bandwidth_ = 1.0 / bandwidth_;
  norm_ = kInvSqrt2Pi /
          (bandwidth_ * static_cast<double>(samples_.size()));
  FIXY_CHECK_MSG(std::isfinite(norm_) && norm_ > 0.0,
                 "GaussianKde normalization is not finite");
  // mode_density_ stays at its "not computed" sentinel: ModeDensity()
  // derives it on first use, so fitting stays cheap for distributions
  // that are folded or serialized but never scored.
}

GaussianKde::GaussianKde(const GaussianKde& other)
    : samples_(other.samples_),
      bandwidth_(other.bandwidth_),
      inv_bandwidth_(other.inv_bandwidth_),
      norm_(other.norm_),
      mode_density_(other.mode_density_.load(std::memory_order_relaxed)) {}

GaussianKde::GaussianKde(GaussianKde&& other) noexcept
    : samples_(std::move(other.samples_)),
      bandwidth_(other.bandwidth_),
      inv_bandwidth_(other.inv_bandwidth_),
      norm_(other.norm_),
      mode_density_(other.mode_density_.load(std::memory_order_relaxed)) {}

GaussianKde& GaussianKde::operator=(const GaussianKde& other) {
  samples_ = other.samples_;
  bandwidth_ = other.bandwidth_;
  inv_bandwidth_ = other.inv_bandwidth_;
  norm_ = other.norm_;
  mode_density_.store(other.mode_density_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return *this;
}

GaussianKde& GaussianKde::operator=(GaussianKde&& other) noexcept {
  samples_ = std::move(other.samples_);
  bandwidth_ = other.bandwidth_;
  inv_bandwidth_ = other.inv_bandwidth_;
  norm_ = other.norm_;
  mode_density_.store(other.mode_density_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return *this;
}

double GaussianKde::ModeDensity() const {
  // For a Gaussian KDE the mode is near one of the sample points; the
  // maximum of the density over the samples gives an accurate
  // normalization constant. It is derived on first use — a fold or a
  // save/load round trip never pays for it — and cached. Racing first
  // callers each compute the same deterministic value, so the relaxed
  // store is benign.
  const double cached = mode_density_.load(std::memory_order_relaxed);
  if (cached >= 0.0) return cached;
  const double computed = ExactModeDensity();
  mode_density_.store(computed, std::memory_order_relaxed);
  return computed;
}

double GaussianKde::ExactModeDensity() const {
  const size_t n = samples_.size();
  // Small fits: the full sliding-window scan is already cheap, and the
  // bound arrays would cost more than they save.
  if (n <= 2048) {
    size_t lo = 0;
    size_t hi = 0;
    double best = 0.0;
    for (double x : samples_) {
      best = std::max(best, WindowedSum(x, &lo, &hi) * norm_);
    }
    return best;
  }
  // Large fits: a full scan is O(n * window) kernel evaluations — for a
  // reservoir-capacity KDE that dominates the entire fit. Instead, bound
  // each sample's density from above by counting neighbors in annuli of
  // width h = bandwidth/8 out to the 8-bandwidth kernel cutoff: a
  // neighbor at distance d in annulus k (k*h < d <= (k+1)*h) contributes
  // at most exp(-(k*h)^2 / (2*bw^2)) of a kernel. Each annulus count is a
  // monotone two-pointer sweep, so all bounds cost O(K * n). Only samples
  // whose bound beats the best exact density seen so far are evaluated
  // exactly; the true argmax can never be pruned (its bound is >= its
  // density, which is >= every other density), so the result equals the
  // full scan's, bit for bit.
  constexpr int kAnnuli = 64;  // kAnnuli * h == the 8-bandwidth cutoff
  const double h = bandwidth_ / 8.0;
  std::vector<double> bound(n, 0.0);
  std::vector<uint32_t> prev_window(n, 0);
  for (int k = 1; k <= kAnnuli; ++k) {
    const double radius = k * h;
    const double edge = (k - 1) * h * inv_bandwidth_;
    const double weight = std::exp(-0.5 * edge * edge);
    size_t lo = 0;
    size_t hi = 0;
    for (size_t i = 0; i < n; ++i) {
      while (lo < n && samples_[lo] < samples_[i] - radius) ++lo;
      if (hi < lo) hi = lo;
      while (hi < n && samples_[hi] <= samples_[i] + radius) ++hi;
      const uint32_t window = static_cast<uint32_t>(hi - lo);
      bound[i] += weight * static_cast<double>(window - prev_window[i]);
      prev_window[i] = window;
    }
  }
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&bound](uint32_t a, uint32_t b) {
    return bound[a] > bound[b];
  });
  double best = 0.0;
  for (const uint32_t idx : order) {
    if (bound[idx] * norm_ <= best) break;  // the rest are bounded lower
    best = std::max(best, DensityUncounted(samples_[idx]));
  }
  return best;
}

Result<GaussianKde> GaussianKde::Fit(std::vector<double> samples,
                                     BandwidthRule rule) {
  FIXY_RETURN_IF_ERROR(ValidateSamples(samples));
  std::sort(samples.begin(), samples.end());
  const double bw = SelectBandwidth(samples, rule);
  return GaussianKde(std::move(samples), bw);
}

Result<GaussianKde> GaussianKde::FitWithBandwidth(std::vector<double> samples,
                                                  double bandwidth) {
  FIXY_RETURN_IF_ERROR(ValidateSamples(samples));
  if (!(bandwidth >= kMinBandwidth) || !std::isfinite(bandwidth)) {
    // The lower bound also rejects denormal bandwidths whose reciprocal
    // (or normalization constant) would overflow to infinity — reachable
    // from a hand-edited model file via model_io, so this must be a
    // Status, not a CHECK.
    return Status::InvalidArgument(StrFormat(
        "KDE bandwidth must be a finite value >= %g", kMinBandwidth));
  }
  return GaussianKde(std::move(samples), bandwidth);
}

double GaussianKde::Density(double x) const {
  obs::Count("stats.kde_evals");
  return DensityUncounted(x);
}

double GaussianKde::DensityUncounted(double x) const {
  // Non-finite queries have zero density by convention; letting them into
  // lower_bound would break the comparator's ordering requirements.
  if (!std::isfinite(x)) return 0.0;
  // Samples are sorted, so kernels further than 8 bandwidths contribute
  // less than 1e-14 of their mass and can be skipped.
  const double cutoff = 8.0 * bandwidth_;
  const size_t lo = static_cast<size_t>(
      std::lower_bound(samples_.begin(), samples_.end(), x - cutoff) -
      samples_.begin());
  size_t lo_cursor = lo;
  size_t hi_cursor = lo;
  return WindowedSum(x, &lo_cursor, &hi_cursor) * norm_;
}

void GaussianKde::DensityBatch(std::span<const double> xs,
                               std::span<double> out) const {
  FIXY_CHECK(xs.size() == out.size());
  // One batched count per query — the same total the per-query path would
  // record (non-finite queries count too: Density() counts them).
  obs::Count("stats.kde_evals", xs.size());
  size_t lo = 0;
  size_t hi = 0;
  // is_sorted on a NaN-bearing range would violate strict weak ordering,
  // so the finiteness scan comes first.
  const bool all_finite = std::all_of(
      xs.begin(), xs.end(), [](double x) { return std::isfinite(x); });
  if (all_finite && std::is_sorted(xs.begin(), xs.end())) {
    for (size_t i = 0; i < xs.size(); ++i) {
      out[i] = WindowedSum(xs[i], &lo, &hi) * norm_;
    }
    return;
  }
  // Otherwise evaluate the finite queries in value order through an index
  // permutation so the window still slides monotonically, and give
  // non-finite queries zero density directly (the Density() convention).
  // The permutation scratch is reused across calls: feature scoring hits
  // this path once per (distribution, track), so a fresh allocation per
  // call was measurable heap churn.
  thread_local std::vector<size_t> order;
  order.clear();
  order.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    if (std::isfinite(xs[i])) {
      order.push_back(i);
    } else {
      out[i] = 0.0;
    }
  }
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  for (size_t idx : order) {
    out[idx] = WindowedSum(xs[idx], &lo, &hi) * norm_;
  }
}

double GaussianKde::WindowedSum(double x, size_t* lo, size_t* hi) const {
  // Advances [*lo, *hi) to the window of samples within the 8-bandwidth
  // cutoff of `x` — the same bounds lower_bound/upper_bound would find —
  // then hands the contiguous window to the dispatched kernel.
  const double cutoff = 8.0 * bandwidth_;
  const double lo_value = x - cutoff;
  const double hi_value = x + cutoff;
  const size_t n = samples_.size();
  while (*lo < n && samples_[*lo] < lo_value) ++*lo;
  if (*hi < *lo) *hi = *lo;
  while (*hi < n && samples_[*hi] <= hi_value) ++*hi;
  return simd::GaussianWindowSum(samples_.data() + *lo, *hi - *lo, x,
                                 inv_bandwidth_);
}

std::string GaussianKde::ToString() const {
  return StrFormat("KDE(n=%zu, bw=%s)", samples_.size(),
                   DoubleToString(bandwidth_, 4).c_str());
}

}  // namespace fixy::stats
