// Histogram density estimation: an alternative to KDE for feature
// distributions (the paper lets users override the default estimator;
// the ablation bench compares the two).
#ifndef FIXY_STATS_HISTOGRAM_H_
#define FIXY_STATS_HISTOGRAM_H_

#include <vector>

#include "common/result.h"
#include "stats/distribution.h"

namespace fixy::stats {

/// A fixed-width-bin histogram density over [min, max]. Values outside the
/// fitted range have zero density (before the score floor).
class HistogramDensity final : public Distribution {
 public:
  /// Fits to `samples` with `num_bins` equal-width bins spanning the sample
  /// range (widened slightly when the range is degenerate).
  /// Errors: InvalidArgument for empty/non-finite samples or num_bins < 1.
  static Result<HistogramDensity> Fit(const std::vector<double>& samples,
                                      int num_bins = 32);

  double Density(double x) const override;
  double ModeDensity() const override { return mode_density_; }
  std::string ToString() const override;

  int num_bins() const { return static_cast<int>(counts_.size()); }
  double bin_width() const { return bin_width_; }
  /// Count of fitted samples in bin `i`.
  size_t bin_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  /// Left edge of bin 0 (exposed for serialization).
  double lower_bound() const { return lo_; }
  size_t total_count() const { return total_; }

  /// Reconstructs a histogram from serialized parameters. Errors:
  /// InvalidArgument on empty counts, non-positive bin width, or counts
  /// that do not sum to `total`.
  static Result<HistogramDensity> FromParts(double lo, double bin_width,
                                            std::vector<size_t> counts);

 private:
  HistogramDensity(double lo, double bin_width, std::vector<size_t> counts,
                   size_t total);

  double lo_ = 0.0;
  double bin_width_ = 0.0;
  std::vector<size_t> counts_;
  size_t total_ = 0;
  double mode_density_ = 0.0;
};

}  // namespace fixy::stats

#endif  // FIXY_STATS_HISTOGRAM_H_
