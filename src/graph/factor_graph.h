// The factor graph Fixy compiles scenes into (Section 4.3 of the paper).
//
// Compilation creates one variable node per observation and one factor node
// per (feature distribution, element) pair whose feature applies; an edge
// connects a factor to every observation in its element. The graph is
// bipartite by construction and scoring walks it:
//
//   - an observation's score is the sum of ln(aof(feature score)) over its
//     adjacent factors (Equation 2);
//   - a component's score is the sum over its *distinct* adjacent factors,
//     normalized by the number of those factors (the paper's worked
//     example: (ln 0.37 + ln 0.39 + ln 0.21) / 3 = -1.17).
//
// Storage is CSR-style (DESIGN.md §11): adjacency lists are spans into two
// graph-owned pools instead of per-node vectors, because variables are
// created bundle-major and every element kind covers a contiguous variable
// range — so compilation allocates a handful of pools per scene instead of
// one vector per node. The graph is consequently move-only: copying would
// leave the spans pointing into the source's pools.
#ifndef FIXY_GRAPH_FACTOR_GRAPH_H_
#define FIXY_GRAPH_FACTOR_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/track.h"
#include "dsl/feature_distribution.h"
#include "dsl/feature_score_cache.h"

namespace fixy {

/// Identifies the scene element a factor was instantiated over.
struct ElementRef {
  FeatureKind kind = FeatureKind::kObservation;
  size_t track_index = 0;
  /// For kBundle and kObservation: the bundle. For kTransition: the *from*
  /// bundle (the transition spans bundle_index -> bundle_index + 1).
  size_t bundle_index = 0;
  /// For kObservation only.
  size_t obs_index = 0;
};

/// A variable node: one observation.
struct VariableNode {
  ObservationId obs_id = kInvalidObservationId;
  size_t track_index = 0;
  size_t bundle_index = 0;
  size_t obs_index = 0;
  /// Indices into FactorGraph::factors(), ascending. Points into the
  /// graph's adjacency pool; valid exactly as long as the graph.
  std::span<const size_t> factors;
};

/// A factor node: one feature distribution evaluated on one element.
struct FactorNode {
  /// Index into the LoaSpec's feature_distributions.
  size_t fd_index = 0;
  ElementRef element;
  /// Post-AOF likelihood in (0, 1].
  double score = 1.0;
  /// ln(score), precomputed once — scoring sums these on every walk.
  double log_score = 0.0;
  /// Indices into FactorGraph::variables() — a contiguous ascending range
  /// (every element kind covers one). Points into the graph's pool; valid
  /// exactly as long as the graph.
  std::span<const size_t> variables;
};

/// A compiled, scored factor graph over one scene's tracks. Move-only (the
/// node adjacency spans alias graph-owned pools).
class FactorGraph {
 public:
  /// Compiles `tracks` against `spec`. Every applicable feature is
  /// evaluated eagerly and stored on its factor. When `shared_scores` is
  /// non-null, raw (pre-AOF) likelihoods are read through it — so several
  /// applications compiling over the same track set (ScenePass) evaluate
  /// each learned feature once; the caller must keep the cache paired with
  /// this exact track set. Scores are identical with or without a cache.
  ///
  /// When `track_mask` is non-null (one entry per track), factors are only
  /// instantiated for tracks with a nonzero mask — masked-out tracks keep
  /// their variable nodes but score nullopt. Top-k pruning compiles with
  /// the mask to skip feature evaluation for tracks that provably cannot
  /// rank (DESIGN.md §11); for every masked-in track the factors and
  /// scores are identical to an unmasked compile, because factors never
  /// span tracks.
  ///
  /// Errors: InvalidArgument if a track contains an empty bundle.
  static Result<FactorGraph> Compile(const TrackSet& tracks,
                                     const LoaSpec& spec,
                                     double frame_rate_hz,
                                     FeatureScoreCache* shared_scores = nullptr,
                                     const std::vector<uint8_t>* track_mask =
                                         nullptr);

  FactorGraph(const FactorGraph&) = delete;
  FactorGraph& operator=(const FactorGraph&) = delete;
  FactorGraph(FactorGraph&&) = default;
  FactorGraph& operator=(FactorGraph&&) = default;

  const TrackSet& tracks() const { return tracks_; }
  const std::vector<VariableNode>& variables() const { return variables_; }
  const std::vector<FactorNode>& factors() const { return factors_; }

  /// Variable index for the observation at (track, bundle, obs); nullopt
  /// on out-of-range indices (queries never abort — the graph may have
  /// been compiled from untrusted input).
  std::optional<size_t> VariableIndex(size_t track_index, size_t bundle_index,
                                      size_t obs_index) const;

  /// Sum of ln(score) over the factors adjacent to the given variables,
  /// counting each factor once, divided by the number of such factors
  /// (Section 6). With normalize=false the raw sum is returned instead —
  /// only the normalization ablation uses this; it makes components of
  /// different sizes incomparable, which is exactly what Section 6's
  /// normalization exists to fix. nullopt when no factor touches the set.
  std::optional<double> ScoreVariableSet(
      const std::vector<size_t>& variable_indices,
      bool normalize = true) const;

  /// Component scores at the three granularities the applications rank.
  /// Out-of-range indices yield nullopt, never an abort.
  std::optional<double> ScoreTrack(size_t track_index,
                                   bool normalize = true) const;
  std::optional<double> ScoreBundle(size_t track_index,
                                    size_t bundle_index) const;
  std::optional<double> ScoreObservation(size_t variable_index) const;

  /// Structural self-check: edges are consistent and the graph is
  /// bipartite (factor adjacency lists reference valid variables and vice
  /// versa). Returns the first violation.
  Status Validate() const;

  /// Human-readable structure dump (used by the Figure 2 bench).
  std::string ToString() const;

 private:
  FactorGraph() = default;

  /// Shared scoring core; the public entry points adapt to it.
  std::optional<double> ScoreVariableSpan(std::span<const size_t> variables,
                                          bool normalize) const;

  TrackSet tracks_;
  std::vector<VariableNode> variables_;
  std::vector<FactorNode> factors_;
  /// variable_offsets_[t][b] = variable index of observation 0 in bundle b
  /// of track t.
  std::vector<std::vector<size_t>> variable_offsets_;
  /// The identity permutation [0, variables_.size()): FactorNode::variables
  /// spans slice it, since every factor covers a contiguous variable range.
  std::vector<size_t> variable_iota_;
  /// CSR pool behind VariableNode::factors, variable-major.
  std::vector<size_t> var_factor_pool_;
};

}  // namespace fixy

#endif  // FIXY_GRAPH_FACTOR_GRAPH_H_
