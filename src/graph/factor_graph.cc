#include "graph/factor_graph.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace fixy {

Result<FactorGraph> FactorGraph::Compile(const TrackSet& tracks,
                                         const LoaSpec& spec,
                                         double frame_rate_hz,
                                         FeatureScoreCache* shared_scores) {
  FactorGraph graph;
  graph.tracks_ = tracks;

  // Create variable nodes and the (track, bundle) -> variable offset table.
  graph.variable_offsets_.resize(tracks.tracks.size());
  for (size_t t = 0; t < tracks.tracks.size(); ++t) {
    const Track& track = tracks.tracks[t];
    graph.variable_offsets_[t].resize(track.bundles().size());
    for (size_t b = 0; b < track.bundles().size(); ++b) {
      const ObservationBundle& bundle = track.bundles()[b];
      if (bundle.observations.empty()) {
        return Status::InvalidArgument(
            StrFormat("track %zu bundle %zu is empty", t, b));
      }
      graph.variable_offsets_[t][b] = graph.variables_.size();
      for (size_t o = 0; o < bundle.observations.size(); ++o) {
        VariableNode node;
        node.obs_id = bundle.observations[o].id;
        node.track_index = t;
        node.bundle_index = b;
        node.obs_index = o;
        graph.variables_.push_back(std::move(node));
      }
    }
  }

  // Instantiate factors.
  auto add_factor = [&graph](size_t fd_index, ElementRef element, double score,
                             std::vector<size_t> variables) {
    FactorNode factor;
    factor.fd_index = fd_index;
    factor.element = element;
    factor.score = score;
    factor.variables = std::move(variables);
    const size_t factor_index = graph.factors_.size();
    for (size_t v : factor.variables) {
      graph.variables_[v].factors.push_back(factor_index);
    }
    graph.factors_.push_back(std::move(factor));
  };

  for (size_t fd_index = 0; fd_index < spec.feature_distributions.size();
       ++fd_index) {
    const FeatureDistribution& fd = spec.feature_distributions[fd_index];
    for (size_t t = 0; t < tracks.tracks.size(); ++t) {
      const Track& track = tracks.tracks[t];
      // Raw (pre-AOF) likelihoods for this (feature distribution, track)
      // pair, either shared across applications through the scene's cache
      // or computed locally. Density evaluations are grouped per
      // distribution inside, which hits the KDE's sliding-window fast
      // path. Layout per kind is documented on RawTrackScores and matches
      // the factor instantiation order below; the AOF and score floor are
      // applied here, per factor.
      RawTrackScores local;
      if (shared_scores == nullptr) {
        local = ComputeRawTrackScores(fd, track, frame_rate_hz);
      }
      const RawTrackScores& raw =
          shared_scores != nullptr ? shared_scores->Get(fd, track, t) : local;
      auto score_at = [&fd, &raw](size_t i) -> std::optional<double> {
        if (!raw.values[i].has_value()) return std::nullopt;
        return fd.ApplyAofAndFloor(*raw.values[i]);
      };
      switch (fd.feature().kind()) {
        case FeatureKind::kObservation: {
          size_t i = 0;
          for (size_t b = 0; b < track.bundles().size(); ++b) {
            const ObservationBundle& bundle = track.bundles()[b];
            for (size_t o = 0; o < bundle.observations.size(); ++o, ++i) {
              const std::optional<double> score = score_at(i);
              if (!score.has_value()) continue;
              add_factor(fd_index,
                         {FeatureKind::kObservation, t, b, o}, *score,
                         {graph.variable_offsets_[t][b] + o});
            }
          }
          break;
        }
        case FeatureKind::kBundle: {
          for (size_t b = 0; b < track.bundles().size(); ++b) {
            const ObservationBundle& bundle = track.bundles()[b];
            const std::optional<double> score = score_at(b);
            if (!score.has_value()) continue;
            std::vector<size_t> vars;
            vars.reserve(bundle.observations.size());
            for (size_t o = 0; o < bundle.observations.size(); ++o) {
              vars.push_back(graph.variable_offsets_[t][b] + o);
            }
            add_factor(fd_index, {FeatureKind::kBundle, t, b, 0}, *score,
                       std::move(vars));
          }
          break;
        }
        case FeatureKind::kTransition: {
          for (size_t b = 0; b + 1 < track.bundles().size(); ++b) {
            const ObservationBundle& from = track.bundles()[b];
            const ObservationBundle& to = track.bundles()[b + 1];
            const std::optional<double> score = score_at(b);
            if (!score.has_value()) continue;
            std::vector<size_t> vars;
            for (size_t o = 0; o < from.observations.size(); ++o) {
              vars.push_back(graph.variable_offsets_[t][b] + o);
            }
            for (size_t o = 0; o < to.observations.size(); ++o) {
              vars.push_back(graph.variable_offsets_[t][b + 1] + o);
            }
            add_factor(fd_index, {FeatureKind::kTransition, t, b, 0}, *score,
                       std::move(vars));
          }
          break;
        }
        case FeatureKind::kTrack: {
          if (raw.values.empty()) break;
          const std::optional<double> score = score_at(0);
          if (!score.has_value()) break;
          std::vector<size_t> vars;
          for (size_t b = 0; b < track.bundles().size(); ++b) {
            for (size_t o = 0; o < track.bundles()[b].observations.size();
                 ++o) {
              vars.push_back(graph.variable_offsets_[t][b] + o);
            }
          }
          add_factor(fd_index, {FeatureKind::kTrack, t, 0, 0}, *score,
                     std::move(vars));
          break;
        }
      }
    }
  }
  return graph;
}

std::optional<size_t> FactorGraph::VariableIndex(size_t track_index,
                                                 size_t bundle_index,
                                                 size_t obs_index) const {
  if (track_index >= variable_offsets_.size()) return std::nullopt;
  if (bundle_index >= variable_offsets_[track_index].size()) {
    return std::nullopt;
  }
  if (obs_index >= tracks_.tracks[track_index]
                       .bundles()[bundle_index]
                       .observations.size()) {
    return std::nullopt;
  }
  return variable_offsets_[track_index][bundle_index] + obs_index;
}

std::optional<double> FactorGraph::ScoreVariableSet(
    const std::vector<size_t>& variable_indices, bool normalize) const {
  std::unordered_set<size_t> seen_factors;
  double sum = 0.0;
  for (size_t v : variable_indices) {
    if (v >= variables_.size()) return std::nullopt;
    for (size_t f : variables_[v].factors) {
      if (!seen_factors.insert(f).second) continue;
      sum += std::log(factors_[f].score);
    }
  }
  if (seen_factors.empty()) return std::nullopt;
  if (!normalize) return sum;
  return sum / static_cast<double>(seen_factors.size());
}

std::optional<double> FactorGraph::ScoreTrack(size_t track_index,
                                              bool normalize) const {
  if (track_index >= tracks_.tracks.size()) return std::nullopt;
  std::vector<size_t> vars;
  const Track& track = tracks_.tracks[track_index];
  for (size_t b = 0; b < track.bundles().size(); ++b) {
    for (size_t o = 0; o < track.bundles()[b].observations.size(); ++o) {
      vars.push_back(variable_offsets_[track_index][b] + o);
    }
  }
  return ScoreVariableSet(vars, normalize);
}

std::optional<double> FactorGraph::ScoreBundle(size_t track_index,
                                               size_t bundle_index) const {
  if (track_index >= tracks_.tracks.size()) return std::nullopt;
  const Track& track = tracks_.tracks[track_index];
  if (bundle_index >= track.bundles().size()) return std::nullopt;
  std::vector<size_t> vars;
  for (size_t o = 0;
       o < track.bundles()[bundle_index].observations.size(); ++o) {
    vars.push_back(variable_offsets_[track_index][bundle_index] + o);
  }
  return ScoreVariableSet(vars);
}

std::optional<double> FactorGraph::ScoreObservation(
    size_t variable_index) const {
  return ScoreVariableSet({variable_index});
}

Status FactorGraph::Validate() const {
  for (size_t f = 0; f < factors_.size(); ++f) {
    const FactorNode& factor = factors_[f];
    if (factor.variables.empty()) {
      return Status::Internal(StrFormat("factor %zu has no variables", f));
    }
    if (!(factor.score > 0.0) || factor.score > 1.0) {
      return Status::Internal(
          StrFormat("factor %zu score %.9g out of (0, 1]", f, factor.score));
    }
    for (size_t v : factor.variables) {
      if (v >= variables_.size()) {
        return Status::Internal(
            StrFormat("factor %zu references invalid variable %zu", f, v));
      }
      const auto& var_factors = variables_[v].factors;
      if (std::find(var_factors.begin(), var_factors.end(), f) ==
          var_factors.end()) {
        return Status::Internal(
            StrFormat("edge %zu-%zu missing reverse direction", f, v));
      }
    }
  }
  for (size_t v = 0; v < variables_.size(); ++v) {
    for (size_t f : variables_[v].factors) {
      if (f >= factors_.size()) {
        return Status::Internal(
            StrFormat("variable %zu references invalid factor %zu", v, f));
      }
      const auto& factor_vars = factors_[f].variables;
      if (std::find(factor_vars.begin(), factor_vars.end(), v) ==
          factor_vars.end()) {
        return Status::Internal(
            StrFormat("edge %zu-%zu missing forward direction", v, f));
      }
    }
  }
  return Status::Ok();
}

std::string FactorGraph::ToString() const {
  std::string out = StrFormat("FactorGraph: %zu variables, %zu factors\n",
                              variables_.size(), factors_.size());
  for (size_t v = 0; v < variables_.size(); ++v) {
    const VariableNode& node = variables_[v];
    const Observation& obs = tracks_.tracks[node.track_index]
                                 .bundles()[node.bundle_index]
                                 .observations[node.obs_index];
    out += StrFormat("  var %zu: track %zu bundle %zu %s\n", v,
                     node.track_index, node.bundle_index,
                     obs.ToString().c_str());
  }
  for (size_t f = 0; f < factors_.size(); ++f) {
    const FactorNode& factor = factors_[f];
    out += StrFormat("  factor %zu: fd=%zu kind=%s t=%zu b=%zu score=%.4f ->",
                     f, factor.fd_index,
                     FeatureKindToString(factor.element.kind),
                     factor.element.track_index, factor.element.bundle_index,
                     factor.score);
    for (size_t v : factor.variables) {
      out += StrFormat(" %zu", v);
    }
    out += "\n";
  }
  return out;
}

}  // namespace fixy
