#include "graph/factor_graph.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace fixy {

Result<FactorGraph> FactorGraph::Compile(const TrackSet& tracks,
                                         const LoaSpec& spec,
                                         double frame_rate_hz,
                                         FeatureScoreCache* shared_scores,
                                         const std::vector<uint8_t>* track_mask) {
  FIXY_CHECK_MSG(track_mask == nullptr ||
                     track_mask->size() == tracks.tracks.size(),
                 "track mask size %zu != track count %zu",
                 track_mask == nullptr ? size_t{0} : track_mask->size(),
                 tracks.tracks.size());
  FactorGraph graph;
  graph.tracks_ = tracks;

  // Create variable nodes and the (track, bundle) -> variable offset table.
  graph.variable_offsets_.resize(tracks.tracks.size());
  for (size_t t = 0; t < tracks.tracks.size(); ++t) {
    const Track& track = tracks.tracks[t];
    graph.variable_offsets_[t].resize(track.bundles().size());
    for (size_t b = 0; b < track.bundles().size(); ++b) {
      const ObservationBundle& bundle = track.bundles()[b];
      if (bundle.observations.empty()) {
        return Status::InvalidArgument(
            StrFormat("track %zu bundle %zu is empty", t, b));
      }
      graph.variable_offsets_[t][b] = graph.variables_.size();
      for (size_t o = 0; o < bundle.observations.size(); ++o) {
        VariableNode node;
        node.obs_id = bundle.observations[o].id;
        node.track_index = t;
        node.bundle_index = b;
        node.obs_index = o;
        graph.variables_.push_back(node);
      }
    }
  }

  // The identity permutation every factor's variable span slices. Sized
  // once here; factor spans alias it, so it must never grow afterwards.
  graph.variable_iota_.resize(graph.variables_.size());
  for (size_t v = 0; v < graph.variable_iota_.size(); ++v) {
    graph.variable_iota_[v] = v;
  }

  // Instantiate factors. Variables are created bundle-major, so every
  // element kind covers the contiguous range [first_var, first_var+count):
  // an observation is one variable, a bundle is its observation run, a
  // transition is two *adjacent* bundle runs, and a track is all of its
  // bundle runs back to back.
  auto add_factor = [&graph](size_t fd_index, ElementRef element, double score,
                             size_t first_var, size_t var_count) {
    FactorNode factor;
    factor.fd_index = fd_index;
    factor.element = element;
    factor.score = score;
    factor.log_score = std::log(score);
    factor.variables = std::span<const size_t>(
        graph.variable_iota_.data() + first_var, var_count);
    graph.factors_.push_back(factor);
  };

  for (size_t fd_index = 0; fd_index < spec.feature_distributions.size();
       ++fd_index) {
    const FeatureDistribution& fd = spec.feature_distributions[fd_index];
    for (size_t t = 0; t < tracks.tracks.size(); ++t) {
      if (track_mask != nullptr && (*track_mask)[t] == 0) continue;
      const Track& track = tracks.tracks[t];
      // Raw (pre-AOF) likelihoods for this (feature distribution, track)
      // pair, either shared across applications through the scene's cache
      // or computed locally (into a reused thread-local, so the uncached
      // path does not allocate per pair either). Density evaluations are
      // grouped per distribution inside, which hits the KDE's batched SIMD
      // path. Layout per kind is documented on RawTrackScores and matches
      // the factor instantiation order below; the AOF and score floor are
      // applied here, per factor.
      thread_local RawTrackScores local;
      if (shared_scores == nullptr) {
        ComputeRawTrackScores(fd, track, frame_rate_hz, &local);
      }
      const RawTrackScores& raw =
          shared_scores != nullptr ? shared_scores->Get(fd, track, t) : local;
      auto score_at = [&fd, &raw](size_t i) -> std::optional<double> {
        if (raw.engaged[i] == 0) return std::nullopt;
        return fd.ApplyAofAndFloor(raw.values[i]);
      };
      switch (fd.feature().kind()) {
        case FeatureKind::kObservation: {
          size_t i = 0;
          for (size_t b = 0; b < track.bundles().size(); ++b) {
            const ObservationBundle& bundle = track.bundles()[b];
            for (size_t o = 0; o < bundle.observations.size(); ++o, ++i) {
              const std::optional<double> score = score_at(i);
              if (!score.has_value()) continue;
              add_factor(fd_index, {FeatureKind::kObservation, t, b, o},
                         *score, graph.variable_offsets_[t][b] + o, 1);
            }
          }
          break;
        }
        case FeatureKind::kBundle: {
          for (size_t b = 0; b < track.bundles().size(); ++b) {
            const ObservationBundle& bundle = track.bundles()[b];
            const std::optional<double> score = score_at(b);
            if (!score.has_value()) continue;
            add_factor(fd_index, {FeatureKind::kBundle, t, b, 0}, *score,
                       graph.variable_offsets_[t][b],
                       bundle.observations.size());
          }
          break;
        }
        case FeatureKind::kTransition: {
          for (size_t b = 0; b + 1 < track.bundles().size(); ++b) {
            const ObservationBundle& from = track.bundles()[b];
            const ObservationBundle& to = track.bundles()[b + 1];
            const std::optional<double> score = score_at(b);
            if (!score.has_value()) continue;
            add_factor(fd_index, {FeatureKind::kTransition, t, b, 0}, *score,
                       graph.variable_offsets_[t][b],
                       from.observations.size() + to.observations.size());
          }
          break;
        }
        case FeatureKind::kTrack: {
          if (raw.empty()) break;
          const std::optional<double> score = score_at(0);
          if (!score.has_value()) break;
          size_t var_count = 0;
          for (size_t b = 0; b < track.bundles().size(); ++b) {
            var_count += track.bundles()[b].observations.size();
          }
          add_factor(fd_index, {FeatureKind::kTrack, t, 0, 0}, *score,
                     graph.variable_offsets_[t][0], var_count);
          break;
        }
      }
    }
  }

  // Build the variable -> factor CSR adjacency with a counting sort. The
  // single scratch array lives in a per-thread arena: degree counts turn
  // into start offsets, the fill pass advances them to end offsets, and
  // the span pass reads starts back from the previous slot.
  thread_local Arena arena;
  arena.Reset();
  const size_t num_vars = graph.variables_.size();
  size_t* cursor = arena.AllocateZeroed<size_t>(num_vars);
  size_t total_edges = 0;
  for (const FactorNode& factor : graph.factors_) {
    total_edges += factor.variables.size();
    for (size_t v : factor.variables) ++cursor[v];
  }
  size_t running = 0;
  for (size_t v = 0; v < num_vars; ++v) {
    const size_t degree = cursor[v];
    cursor[v] = running;
    running += degree;
  }
  graph.var_factor_pool_.resize(total_edges);
  for (size_t f = 0; f < graph.factors_.size(); ++f) {
    for (size_t v : graph.factors_[f].variables) {
      graph.var_factor_pool_[cursor[v]++] = f;
    }
  }
  for (size_t v = 0; v < num_vars; ++v) {
    const size_t end = cursor[v];
    const size_t start = v == 0 ? 0 : cursor[v - 1];
    graph.variables_[v].factors = std::span<const size_t>(
        graph.var_factor_pool_.data() + start, end - start);
  }
  return graph;
}

std::optional<size_t> FactorGraph::VariableIndex(size_t track_index,
                                                 size_t bundle_index,
                                                 size_t obs_index) const {
  if (track_index >= variable_offsets_.size()) return std::nullopt;
  if (bundle_index >= variable_offsets_[track_index].size()) {
    return std::nullopt;
  }
  if (obs_index >= tracks_.tracks[track_index]
                       .bundles()[bundle_index]
                       .observations.size()) {
    return std::nullopt;
  }
  return variable_offsets_[track_index][bundle_index] + obs_index;
}

std::optional<double> FactorGraph::ScoreVariableSpan(
    std::span<const size_t> variable_indices, bool normalize) const {
  // Distinct-factor dedup by epoch stamp: one shared per-thread stamp
  // array, grown to the largest factor count seen, where "stamped this
  // call" is equality with the call's epoch — no clearing between calls,
  // no per-call allocation. On epoch wrap the array is zeroed once.
  thread_local std::vector<uint32_t> stamps;
  thread_local uint32_t epoch = 0;
  if (stamps.size() < factors_.size()) stamps.resize(factors_.size(), 0);
  if (++epoch == 0) {
    std::fill(stamps.begin(), stamps.end(), 0);
    epoch = 1;
  }
  double sum = 0.0;
  size_t distinct = 0;
  for (size_t v : variable_indices) {
    if (v >= variables_.size()) return std::nullopt;
    for (size_t f : variables_[v].factors) {
      if (stamps[f] == epoch) continue;
      stamps[f] = epoch;
      sum += factors_[f].log_score;
      ++distinct;
    }
  }
  if (distinct == 0) return std::nullopt;
  if (!normalize) return sum;
  return sum / static_cast<double>(distinct);
}

std::optional<double> FactorGraph::ScoreVariableSet(
    const std::vector<size_t>& variable_indices, bool normalize) const {
  return ScoreVariableSpan(
      std::span<const size_t>(variable_indices.data(),
                              variable_indices.size()),
      normalize);
}

std::optional<double> FactorGraph::ScoreTrack(size_t track_index,
                                              bool normalize) const {
  if (track_index >= tracks_.tracks.size()) return std::nullopt;
  const Track& track = tracks_.tracks[track_index];
  if (track.bundles().empty()) return std::nullopt;
  size_t var_count = 0;
  for (size_t b = 0; b < track.bundles().size(); ++b) {
    var_count += track.bundles()[b].observations.size();
  }
  const size_t first = variable_offsets_[track_index][0];
  return ScoreVariableSpan(
      std::span<const size_t>(variable_iota_.data() + first, var_count),
      normalize);
}

std::optional<double> FactorGraph::ScoreBundle(size_t track_index,
                                               size_t bundle_index) const {
  if (track_index >= tracks_.tracks.size()) return std::nullopt;
  const Track& track = tracks_.tracks[track_index];
  if (bundle_index >= track.bundles().size()) return std::nullopt;
  const size_t first = variable_offsets_[track_index][bundle_index];
  return ScoreVariableSpan(
      std::span<const size_t>(
          variable_iota_.data() + first,
          track.bundles()[bundle_index].observations.size()),
      /*normalize=*/true);
}

std::optional<double> FactorGraph::ScoreObservation(
    size_t variable_index) const {
  return ScoreVariableSpan(std::span<const size_t>(&variable_index, 1),
                           /*normalize=*/true);
}

Status FactorGraph::Validate() const {
  for (size_t f = 0; f < factors_.size(); ++f) {
    const FactorNode& factor = factors_[f];
    if (factor.variables.empty()) {
      return Status::Internal(StrFormat("factor %zu has no variables", f));
    }
    if (!(factor.score > 0.0) || factor.score > 1.0) {
      return Status::Internal(
          StrFormat("factor %zu score %.9g out of (0, 1]", f, factor.score));
    }
    for (size_t v : factor.variables) {
      if (v >= variables_.size()) {
        return Status::Internal(
            StrFormat("factor %zu references invalid variable %zu", f, v));
      }
      const auto& var_factors = variables_[v].factors;
      if (std::find(var_factors.begin(), var_factors.end(), f) ==
          var_factors.end()) {
        return Status::Internal(
            StrFormat("edge %zu-%zu missing reverse direction", f, v));
      }
    }
  }
  for (size_t v = 0; v < variables_.size(); ++v) {
    for (size_t f : variables_[v].factors) {
      if (f >= factors_.size()) {
        return Status::Internal(
            StrFormat("variable %zu references invalid factor %zu", v, f));
      }
      const auto& factor_vars = factors_[f].variables;
      if (std::find(factor_vars.begin(), factor_vars.end(), v) ==
          factor_vars.end()) {
        return Status::Internal(
            StrFormat("edge %zu-%zu missing forward direction", v, f));
      }
    }
  }
  return Status::Ok();
}

std::string FactorGraph::ToString() const {
  std::string out = StrFormat("FactorGraph: %zu variables, %zu factors\n",
                              variables_.size(), factors_.size());
  for (size_t v = 0; v < variables_.size(); ++v) {
    const VariableNode& node = variables_[v];
    const Observation& obs = tracks_.tracks[node.track_index]
                                 .bundles()[node.bundle_index]
                                 .observations[node.obs_index];
    out += StrFormat("  var %zu: track %zu bundle %zu %s\n", v,
                     node.track_index, node.bundle_index,
                     obs.ToString().c_str());
  }
  for (size_t f = 0; f < factors_.size(); ++f) {
    const FactorNode& factor = factors_[f];
    out += StrFormat("  factor %zu: fd=%zu kind=%s t=%zu b=%zu score=%.4f ->",
                     f, factor.fd_index,
                     FeatureKindToString(factor.element.kind),
                     factor.element.track_index, factor.element.bundle_index,
                     factor.score);
    for (size_t v : factor.variables) {
      out += StrFormat(" %zu", v);
    }
    out += "\n";
  }
  return out;
}

}  // namespace fixy
