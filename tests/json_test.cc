// Tests for src/json: value model, parser (including malformed-input
// failure injection), writer, and round-trip stability.
#include <gtest/gtest.h>

#include <cmath>

#include "json/json.h"

namespace fixy::json {
namespace {

Value MustParse(std::string_view text) {
  Result<Value> r = Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return std::move(r).value();
}

// ------------------------------------------------------------- Value API

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(JsonValueTest, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(Value(1.0).Find("x"), nullptr);
  EXPECT_EQ(Value("s").Find("x"), nullptr);
}

TEST(JsonValueTest, GetHelpersReportMissingAndWrongType) {
  Object obj;
  obj["n"] = 5;
  obj["s"] = "text";
  const Value v(obj);
  EXPECT_TRUE(v.GetDouble("n").ok());
  EXPECT_EQ(v.GetDouble("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.GetDouble("s").status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(v.GetString("s").ok());
  EXPECT_FALSE(v.GetString("n").ok());
  EXPECT_FALSE(v.GetBool("n").ok());
}

// --------------------------------------------------------------- Parser

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_EQ(MustParse("true").AsBool(), true);
  EXPECT_EQ(MustParse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(MustParse("3.25").AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(MustParse("-17").AsDouble(), -17.0);
  EXPECT_DOUBLE_EQ(MustParse("1e3").AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(MustParse("2.5E-2").AsDouble(), 0.025);
  EXPECT_EQ(MustParse("\"hello\"").AsString(), "hello");
}

TEST(JsonParseTest, NestedStructure) {
  const Value v = MustParse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->AsBool());
  EXPECT_TRUE(v.Find("c")->is_null());
}

TEST(JsonParseTest, WhitespaceTolerance) {
  const Value v = MustParse("  {\n\t\"x\" :\r 1 }  ");
  EXPECT_DOUBLE_EQ(v.Find("x")->AsDouble(), 1.0);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b")").AsString(), "a\"b");
  EXPECT_EQ(MustParse(R"("a\\b")").AsString(), "a\\b");
  EXPECT_EQ(MustParse(R"("a\nb")").AsString(), "a\nb");
  EXPECT_EQ(MustParse(R"("a\tb")").AsString(), "a\tb");
  EXPECT_EQ(MustParse(R"("a\/b")").AsString(), "a/b");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(MustParse(R"("A")").AsString(), "A");
  EXPECT_EQ(MustParse(R"("é")").AsString(), "\xc3\xa9");   // é
  EXPECT_EQ(MustParse(R"("€")").AsString(), "\xe2\x82\xac");  // €
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_TRUE(MustParse("[]").AsArray().empty());
  EXPECT_TRUE(MustParse("{}").AsObject().empty());
}

TEST(JsonParseTest, DuplicateKeysLastWins) {
  const Value v = MustParse(R"({"k": 1, "k": 2})");
  EXPECT_DOUBLE_EQ(v.Find("k")->AsDouble(), 2.0);
}

// Malformed-input failure injection.
class JsonParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonParseErrorTest, Rejects) {
  const Result<Value> r = Parse(GetParam());
  EXPECT_FALSE(r.ok()) << "should reject: " << GetParam();
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParseErrorTest,
    ::testing::Values("", "   ", "{", "}", "[1,", "[1 2]", "{\"a\":}",
                      "{\"a\" 1}", "{a: 1}", "tru", "nul", "+5", "-",
                      "1.2.3", "\"unterminated", "\"bad\\q\"", "\"\\u12\"",
                      "\"\\u12zz\"", "[1]extra", "{} {}", "01a",
                      "\"ctrl\x01char\"", "[[[", "nan", "inf"));

TEST(JsonParseErrorTest, ErrorMessageHasLineAndColumn) {
  const Result<Value> r = Parse("{\n  \"a\": oops\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
}

TEST(JsonParseErrorTest, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "[";
  EXPECT_FALSE(Parse(deep).ok());
}

// --------------------------------------------------------------- Writer

TEST(JsonWriteTest, Scalars) {
  EXPECT_EQ(Write(Value()), "null");
  EXPECT_EQ(Write(Value(true)), "true");
  EXPECT_EQ(Write(Value(false)), "false");
  EXPECT_EQ(Write(Value(3)), "3");
  EXPECT_EQ(Write(Value(2.5)), "2.5");
  EXPECT_EQ(Write(Value("hi")), "\"hi\"");
}

TEST(JsonWriteTest, IntegralDoublesHaveNoDecimalPoint) {
  EXPECT_EQ(Write(Value(100.0)), "100");
  EXPECT_EQ(Write(Value(-42.0)), "-42");
}

TEST(JsonWriteTest, NonFiniteNumbersWriteAsNull) {
  // The documented contract: NaN/Inf have no JSON representation, so the
  // writer emits null and the document always re-parses.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Write(Value(kNan)), "null");
  EXPECT_EQ(Write(Value(kInf)), "null");
  EXPECT_EQ(Write(Value(-kInf)), "null");
}

TEST(JsonWriteTest, NonFiniteNumbersRoundTripAsNull) {
  Object obj;
  obj["ok"] = 1.5;
  obj["bad"] = std::numeric_limits<double>::quiet_NaN();
  const std::string text = Write(Value(obj));
  const Value parsed = MustParse(text);
  EXPECT_TRUE(parsed.Find("bad")->is_null());
  EXPECT_DOUBLE_EQ(parsed.Find("ok")->AsDouble(), 1.5);
  // A second round trip is stable.
  EXPECT_EQ(Write(parsed), text);
}

TEST(JsonParseTest, RejectsNonFiniteLiterals) {
  EXPECT_FALSE(Parse("NaN").ok());
  EXPECT_FALSE(Parse("Infinity").ok());
  EXPECT_FALSE(Parse("[1e999]").ok());
  EXPECT_FALSE(Parse("[-1e999]").ok());
}

TEST(JsonWriteTest, EscapesSpecialCharacters) {
  EXPECT_EQ(Write(Value("a\"b")), R"("a\"b")");
  EXPECT_EQ(Write(Value("a\nb")), R"("a\nb")");
  EXPECT_EQ(Write(Value(std::string("a\x01") + "b")), "\"a\\u0001b\"");
}

TEST(JsonWriteTest, ObjectKeysSorted) {
  Object obj;
  obj["zebra"] = 1;
  obj["apple"] = 2;
  EXPECT_EQ(Write(Value(obj)), R"({"apple":2,"zebra":1})");
}

TEST(JsonWriteTest, PrettyPrinting) {
  Object obj;
  obj["a"] = Array{1, 2};
  const std::string pretty = Write(Value(obj), /*pretty=*/true);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
  EXPECT_NE(pretty.find("  \"a\""), std::string::npos);
}

// ------------------------------------------------------------ Roundtrip

TEST(JsonRoundtripTest, ComplexDocument) {
  const char* doc = R"({"name":"scene","list":[1,2.5,true,null,"x"],)"
                    R"("nested":{"deep":[{"k":-0.125}]}})";
  const Value v = MustParse(doc);
  const Value v2 = MustParse(Write(v));
  EXPECT_EQ(v, v2);
}

TEST(JsonRoundtripTest, DoublePrecisionPreserved) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-12, 12345.6789e55,
                           -2.2250738585072014e-308};
  for (double d : values) {
    const Value parsed = MustParse(Write(Value(d)));
    EXPECT_DOUBLE_EQ(parsed.AsDouble(), d);
  }
}

TEST(JsonRoundtripTest, PrettyAndCompactAgree) {
  const Value v =
      MustParse(R"({"a":[1,{"b":[true,false,null]}],"c":"€"})");
  EXPECT_EQ(MustParse(Write(v, true)), MustParse(Write(v, false)));
}

TEST(JsonRoundtripTest, UnicodeStringSurvives) {
  const Value v = MustParse(R"("café")");
  const Value v2 = MustParse(Write(v));
  EXPECT_EQ(v.AsString(), v2.AsString());
}

}  // namespace
}  // namespace fixy::json
