// Tests for src/core/model_io: distribution serialization round-trips,
// learned-model persistence, the feature registry, and failure injection
// on malformed model documents.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "core/engine.h"
#include "core/features_std.h"
#include "core/model_io.h"
#include "sim/generate.h"
#include "stats/discrete.h"
#include "stats/gaussian.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "stats/lambda_distribution.h"

namespace fixy {
namespace {

std::vector<double> Sample(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(rng.Normal(10.0, 2.0));
  return xs;
}

// Round-trips one distribution through JSON and checks densities match on
// a probe grid.
void ExpectRoundTrip(const stats::Distribution& original) {
  const auto doc = DistributionToJson(original);
  ASSERT_TRUE(doc.ok()) << doc.status();
  // Also through text, as the file path would.
  const auto reparsed = json::Parse(json::Write(*doc));
  ASSERT_TRUE(reparsed.ok());
  const auto loaded = DistributionFromJson(*reparsed);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (double x = -5.0; x <= 25.0; x += 0.37) {
    EXPECT_NEAR((*loaded)->Density(x), original.Density(x), 1e-12) << x;
  }
  EXPECT_NEAR((*loaded)->ModeDensity(), original.ModeDensity(), 1e-12);
}

TEST(DistributionIoTest, KdeRoundTrip) {
  ExpectRoundTrip(stats::GaussianKde::Fit(Sample(200, 1)).value());
}

TEST(DistributionIoTest, HistogramRoundTrip) {
  ExpectRoundTrip(stats::HistogramDensity::Fit(Sample(500, 2), 24).value());
}

TEST(DistributionIoTest, GaussianRoundTrip) {
  ExpectRoundTrip(stats::Gaussian::Create(3.5, 0.75).value());
}

TEST(DistributionIoTest, BernoulliRoundTrip) {
  ExpectRoundTrip(stats::Bernoulli::Create(0.37).value());
}

TEST(DistributionIoTest, CategoricalRoundTrip) {
  ExpectRoundTrip(
      stats::Categorical::Fit({1, 1, 2, 3, 3, 3, 7, 7, 120}).value());
}

TEST(DistributionIoTest, LambdaIsNotSerializable) {
  const stats::LambdaDistribution manual("manual", [](double) { return 1.0; });
  const auto doc = DistributionToJson(manual);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kUnimplemented);
}

class DistributionIoErrorTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(DistributionIoErrorTest, RejectsMalformed) {
  const auto doc = json::Parse(GetParam());
  ASSERT_TRUE(doc.ok()) << "test input must be valid JSON";
  EXPECT_FALSE(DistributionFromJson(*doc).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DistributionIoErrorTest,
    ::testing::Values(
        R"({})",                                        // no type
        R"({"type":"warp"})",                           // unknown type
        R"({"type":"kde"})",                            // missing fields
        R"({"type":"kde","bandwidth":-1,"samples":[1]})",
        R"({"type":"kde","bandwidth":0,"samples":[1]})",
        R"({"type":"kde","bandwidth":1e-320,"samples":[1]})",  // denormal
        R"({"type":"kde","bandwidth":0.5,"samples":[]})",
        R"({"type":"kde","bandwidth":0.5,"samples":["x"]})",
        R"({"type":"histogram","lo":0,"bin_width":0,"counts":[1]})",
        R"({"type":"histogram","lo":0,"bin_width":1,"counts":[]})",
        R"({"type":"histogram","lo":0,"bin_width":1,"counts":[-3]})",
        R"({"type":"gaussian","mean":0,"stddev":0})",
        R"({"type":"bernoulli","p_one":1.5})",
        R"({"type":"categorical","mass":{}})",
        R"({"type":"categorical","mass":{"a":1.0}})",
        R"({"type":"categorical","mass":{"1":0.4}})",   // does not sum to 1
        R"({"type":"categorical","mass":{"":1.0}})",    // empty key
        R"({"type":"categorical","mass":{"12x":1.0}})",  // trailing garbage
        R"({"type":"categorical","mass":{"1.5":1.0}})",  // not an integer
        // Out of range for long: must be rejected, not clamped to
        // LONG_MAX/LONG_MIN (which would silently merge distinct keys).
        R"({"type":"categorical","mass":{"99999999999999999999999999":1.0}})",
        R"({"type":"categorical","mass":{"-99999999999999999999999999":1.0}})",
        "[1,2,3]"));

TEST(DistributionIoTest, CategoricalAcceptsSignedIntegerKeys) {
  const auto doc = json::Parse(
      R"({"type":"categorical","mass":{"-2":0.5,"7":0.5}})");
  ASSERT_TRUE(doc.ok());
  const auto dist = DistributionFromJson(*doc);
  ASSERT_TRUE(dist.ok()) << dist.status();
  EXPECT_GT((*dist)->Density(-2.0), 0.0);
  EXPECT_GT((*dist)->Density(7.0), 0.0);
}

// ---------------------------------------------------------------- Registry

TEST(FeatureRegistryTest, StandardFeaturesResolve) {
  const FeatureRegistry registry = FeatureRegistry::Standard();
  for (const char* name : {"volume", "velocity", "count", "distance",
                           "model_only", "class_agreement"}) {
    const auto feature = registry.Find(name);
    ASSERT_TRUE(feature.ok()) << name;
    EXPECT_EQ((*feature)->name(), name);
  }
}

TEST(FeatureRegistryTest, UnknownFeatureIsNotFound) {
  const FeatureRegistry registry = FeatureRegistry::Standard();
  EXPECT_EQ(registry.Find("warp_factor").status().code(),
            StatusCode::kNotFound);
}

class CustomFeature final : public ObservationFeature {
 public:
  std::string name() const override { return "custom"; }
  std::optional<double> Compute(const Observation& obs,
                                const FeatureContext&) const override {
    return obs.box.height;
  }
};

TEST(FeatureRegistryTest, UserFeaturesRegister) {
  FeatureRegistry registry = FeatureRegistry::Standard();
  registry.Register(std::make_shared<CustomFeature>());
  EXPECT_TRUE(registry.Find("custom").ok());
}

// ---------------------------------------------------------------- Model IO

class ModelIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    training_ = new sim::GeneratedDataset(
        sim::GenerateDataset(sim::LyftLikeProfile(), "train", 3, 515));
  }
  static void TearDownTestSuite() {
    delete training_;
    training_ = nullptr;
  }

  static std::string TempPath(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }

  static sim::GeneratedDataset* training_;
};

sim::GeneratedDataset* ModelIoTest::training_ = nullptr;

TEST_F(ModelIoTest, EngineSaveLoadPreservesRanking) {
  Fixy original;
  ASSERT_TRUE(original.Learn(training_->dataset).ok());
  const std::string path = TempPath("fixy_model_roundtrip.json");
  ASSERT_TRUE(original.SaveModel(path).ok());

  Fixy restored;
  ASSERT_TRUE(restored.LoadModel(path).ok());
  EXPECT_TRUE(restored.is_learned());

  const auto scene = sim::GenerateScene(sim::LyftLikeProfile(), "val", 616);
  const auto a = original.FindMissingTracks(scene.scene).value();
  const auto b = restored.FindMissingTracks(scene.scene).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].track_id, b[i].track_id);
    EXPECT_NEAR(a[i].score, b[i].score, 1e-9);
  }
  // The model-error application (which uses the learned count
  // distribution) survives too.
  const auto me_a = original.FindModelErrors(scene.scene).value();
  const auto me_b = restored.FindModelErrors(scene.scene).value();
  ASSERT_EQ(me_a.size(), me_b.size());
  for (size_t i = 0; i < me_a.size(); ++i) {
    EXPECT_NEAR(me_a[i].score, me_b[i].score, 1e-9);
  }
  std::filesystem::remove(path);
}

TEST_F(ModelIoTest, SaveRequiresLearnedEngine) {
  const Fixy fixy;
  EXPECT_EQ(fixy.SaveModel(TempPath("never.json")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ModelIoTest, LoadMissingFileFails) {
  Fixy fixy;
  EXPECT_EQ(fixy.LoadModel("/nonexistent/model.json").code(),
            StatusCode::kIoError);
  EXPECT_FALSE(fixy.is_learned());
}

TEST_F(ModelIoTest, LoadRejectsModelWithoutCount) {
  // A model document containing only volume is rejected by the engine
  // (FindModelErrors needs the count distribution).
  Fixy original;
  ASSERT_TRUE(original.Learn(training_->dataset).ok());
  const auto doc = LearnedModelToJson(original.learned_features());
  ASSERT_TRUE(doc.ok());
  const std::string path = TempPath("fixy_model_nocount.json");
  {
    std::ofstream out(path);
    out << json::Write(*doc);
  }
  Fixy restored;
  EXPECT_FALSE(restored.LoadModel(path).ok());
  std::filesystem::remove(path);
}

TEST_F(ModelIoTest, LoadRejectsUnknownFeature) {
  const auto doc = json::Parse(
      R"({"format":"fixy-model","version":1,"features":[
           {"feature":"warp","distribution":{"type":"gaussian","mean":0,"stddev":1}}]})");
  ASSERT_TRUE(doc.ok());
  const auto loaded =
      LearnedModelFromJson(*doc, FeatureRegistry::Standard());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ModelIoTest, LoadRejectsWrongFormat) {
  const auto doc = json::Parse(R"({"format":"other","version":1})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(
      LearnedModelFromJson(*doc, FeatureRegistry::Standard()).ok());
}

TEST_F(ModelIoTest, PerClassStructurePreserved) {
  Fixy original;
  ASSERT_TRUE(original.Learn(training_->dataset).ok());
  const auto doc = LearnedModelToJson(original.learned_features());
  ASSERT_TRUE(doc.ok());
  const auto loaded =
      LearnedModelFromJson(*doc, FeatureRegistry::Standard());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.learned_features().size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    const auto& orig = original.learned_features()[i];
    const auto& rest = (*loaded)[i];
    EXPECT_EQ(rest.feature().name(), orig.feature().name());
    EXPECT_EQ(rest.per_class_distributions().size(),
              orig.per_class_distributions().size());
  }
}

}  // namespace
}  // namespace fixy
