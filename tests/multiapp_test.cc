// Tests for the multi-application pipeline: the ApplicationRegistry, the
// shared-ScenePass invariants (association once per scene, model view
// identical to a filtered-scene build), multi-vs-solo byte-identity for
// the batch and streaming APIs at every thread count, and a user-defined
// application ranked end-to-end through FixyOptions::extra_applications.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/applications.h"
#include "core/engine.h"
#include "core/ranker.h"
#include "data/scene_source.h"
#include "dsl/aof.h"
#include "dsl/track_builder.h"
#include "graph/factor_graph.h"
#include "obs/metrics.h"
#include "sim/generate.h"
#include "stats/simd.h"

namespace fixy {
namespace {

// Field-exact equality: the determinism contract is byte-identical
// output, so scores compare with ==, not a tolerance.
void ExpectProposalsIdentical(const std::vector<ErrorProposal>& a,
                              const std::vector<ErrorProposal>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scene_name, b[i].scene_name) << "proposal " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "proposal " << i;
    EXPECT_EQ(a[i].track_id, b[i].track_id) << "proposal " << i;
    EXPECT_EQ(a[i].frame_index, b[i].frame_index) << "proposal " << i;
    EXPECT_EQ(a[i].object_class, b[i].object_class) << "proposal " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "proposal " << i;
    EXPECT_EQ(a[i].model_confidence, b[i].model_confidence)
        << "proposal " << i;
    EXPECT_EQ(a[i].first_frame, b[i].first_frame) << "proposal " << i;
    EXPECT_EQ(a[i].last_frame, b[i].last_frame) << "proposal " << i;
  }
}

void ExpectReportsIdentical(const BatchReport& a, const BatchReport& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.scenes_ok, b.scenes_ok);
  EXPECT_EQ(a.scenes_failed, b.scenes_failed);
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].scene_name, b.outcomes[i].scene_name);
    EXPECT_EQ(a.outcomes[i].ok(), b.outcomes[i].ok());
    ExpectProposalsIdentical(a.outcomes[i].proposals,
                             b.outcomes[i].proposals);
  }
}

// A user-defined application, as an extension would write it: ranks
// human-labeled tracks by inverted likelihood under the base learned
// distributions.
AppSpec TestUserApp(const std::string& name = "test-user-app") {
  AppSpec app;
  app.name = name;
  app.view = SceneView::kFull;
  app.build_spec = [](const LearnedState& learned,
                      const ApplicationOptions&) {
    LoaSpec spec;
    for (const FeatureDistribution& fd : learned.base) {
      spec.feature_distributions.push_back(fd.WithAof(MakeInvertAof()));
    }
    return spec;
  };
  app.extract = [](const AppContext& ctx) {
    std::vector<ErrorProposal> proposals;
    const TrackSet& tracks = ctx.graph.tracks();
    for (size_t t = 0; t < tracks.tracks.size(); ++t) {
      const Track& track = tracks.tracks[t];
      if (!track.HasSource(ObservationSource::kHuman)) continue;
      const std::optional<double> score =
          ctx.graph.ScoreTrack(t, ctx.options.normalize_scores);
      if (!score.has_value()) continue;
      ErrorProposal proposal;
      proposal.scene_name = ctx.scene.name();
      proposal.kind = ProposalKind::kModelError;
      proposal.track_id = track.id();
      proposal.score = *score;
      proposal.first_frame = track.FirstFrame();
      proposal.last_frame = track.LastFrame();
      proposals.push_back(std::move(proposal));
    }
    return proposals;
  };
  return app;
}

const std::vector<std::string> kStandardApps = {
    "missing-tracks", "missing-obs", "model-errors"};

class MultiAppTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    profile_ = new sim::SimProfile(sim::LyftLikeProfile());
    dataset_ = new sim::GeneratedDataset(
        sim::GenerateDataset(*profile_, "multiapp", 8, 91));
    FixyOptions options;
    options.extra_applications.push_back(TestUserApp());
    fixy_ = new Fixy(std::move(options));
    const sim::GeneratedDataset training =
        sim::GenerateDataset(*profile_, "multiapp_train", 4, 92);
    ASSERT_TRUE(fixy_->Learn(training.dataset).ok());
  }

  static void TearDownTestSuite() {
    delete fixy_;
    delete dataset_;
    delete profile_;
    fixy_ = nullptr;
    dataset_ = nullptr;
    profile_ = nullptr;
  }

  static sim::SimProfile* profile_;
  static sim::GeneratedDataset* dataset_;
  static Fixy* fixy_;
};

sim::SimProfile* MultiAppTest::profile_ = nullptr;
sim::GeneratedDataset* MultiAppTest::dataset_ = nullptr;
Fixy* MultiAppTest::fixy_ = nullptr;

// ---- Registry. ----

TEST(RegistryTest, StandardHoldsThePaperApplications) {
  const ApplicationRegistry registry = ApplicationRegistry::Standard();
  EXPECT_EQ(registry.names(), kStandardApps);
  for (const std::string& name : kStandardApps) {
    ASSERT_NE(registry.Find(name), nullptr);
    EXPECT_EQ(registry.Find(name)->name, name);
  }
  EXPECT_EQ(registry.Find("nope"), nullptr);
}

TEST(RegistryTest, RejectsDuplicateAndInvalidRegistrations) {
  ApplicationRegistry registry = ApplicationRegistry::Standard();
  EXPECT_EQ(registry.Register(TestUserApp("missing-tracks")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Register(TestUserApp("")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register(TestUserApp("has space")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register(TestUserApp("has,comma")).code(),
            StatusCode::kInvalidArgument);
  AppSpec no_strategies = TestUserApp("no-strategies");
  no_strategies.extract = nullptr;
  EXPECT_EQ(registry.Register(std::move(no_strategies)).code(),
            StatusCode::kInvalidArgument);
  // Nothing above mutated the table.
  EXPECT_EQ(registry.names(), kStandardApps);
  EXPECT_TRUE(registry.Register(TestUserApp("ok-app")).ok());
  ASSERT_NE(registry.Find("ok-app"), nullptr);
}

TEST(RegistryTest, ResolveMapsNamesAndReportsErrors) {
  const ApplicationRegistry registry = ApplicationRegistry::Standard();
  const auto indices =
      registry.Resolve({"model-errors", "missing-tracks"});
  ASSERT_TRUE(indices.ok());
  EXPECT_EQ(*indices, (std::vector<size_t>{2, 0}));

  EXPECT_EQ(registry.Resolve({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Resolve({"missing-tracks", "missing-tracks"})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  const auto unknown = registry.Resolve({"frobnicate"});
  ASSERT_FALSE(unknown.ok());
  // The message lists the registered names — the CLI surfaces it verbatim.
  EXPECT_NE(unknown.status().message().find("frobnicate"),
            std::string::npos);
  EXPECT_NE(unknown.status().message().find("missing-tracks"),
            std::string::npos);
}

TEST(RegistryTest, EngineSurfacesRegistrationErrors) {
  const sim::SimProfile profile = sim::LyftLikeProfile();
  const sim::GeneratedDataset data =
      sim::GenerateDataset(profile, "regerr", 1, 93);
  FixyOptions options;
  options.extra_applications.push_back(TestUserApp("missing-tracks"));
  Fixy fixy(std::move(options));
  ASSERT_TRUE(fixy.Learn(data.dataset).ok());
  const auto result = fixy.RankDataset(data.dataset, {"missing-tracks"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

// ---- Shared association views. ----

// The model-only view of one shared association pass must be
// byte-identical to a plain Build over a copy of the scene filtered to
// model observations (the invariant the model-error application's
// correctness rests on).
TEST_F(MultiAppTest, ModelViewMatchesFilteredSceneBuild) {
  const TrackBuilder builder;
  for (const Scene& scene : dataset_->dataset.scenes) {
    const auto views = builder.BuildViews(scene, /*need_full=*/true,
                                          /*need_model_only=*/true);
    ASSERT_TRUE(views.ok()) << scene.name();
    const auto filtered = builder.Build(internal::FilterToModelOnly(scene));
    ASSERT_TRUE(filtered.ok()) << scene.name();
    const TrackSet& a = views->view(SceneView::kModelOnly);
    const TrackSet& b = *filtered;
    ASSERT_EQ(a.tracks.size(), b.tracks.size()) << scene.name();
    for (size_t t = 0; t < a.tracks.size(); ++t) {
      EXPECT_EQ(a.tracks[t].id(), b.tracks[t].id());
      ASSERT_EQ(a.tracks[t].bundles().size(), b.tracks[t].bundles().size());
      for (size_t k = 0; k < a.tracks[t].bundles().size(); ++k) {
        EXPECT_EQ(a.tracks[t].bundles()[k].frame_index,
                  b.tracks[t].bundles()[k].frame_index);
        EXPECT_EQ(a.tracks[t].bundles()[k].observations.size(),
                  b.tracks[t].bundles()[k].observations.size());
      }
    }
  }
}

// ---- Multi-vs-solo byte-identity. ----

TEST_F(MultiAppTest, BatchMultiAppMatchesSoloRunsAtEveryThreadCount) {
  const std::vector<std::string> apps = fixy_->applications().names();
  // Solo baselines, one per registered app (serial run).
  std::vector<BatchReport> solo;
  for (const std::string& app : apps) {
    BatchOptions options;
    options.num_threads = 1;
    auto result = fixy_->RankDataset(dataset_->dataset, {app}, options);
    ASSERT_TRUE(result.ok()) << app << ": " << result.status().ToString();
    solo.push_back(std::move(result->reports.front()));
  }
  for (int threads = 1; threads <= 8; ++threads) {
    BatchOptions options;
    options.num_threads = threads;
    const auto multi = fixy_->RankDataset(dataset_->dataset, apps, options);
    ASSERT_TRUE(multi.ok()) << "threads=" << threads;
    ASSERT_EQ(multi->apps, apps);
    ASSERT_EQ(multi->reports.size(), apps.size());
    for (size_t a = 0; a < apps.size(); ++a) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " app=" + apps[a]);
      ExpectReportsIdentical(multi->reports[a], solo[a]);
    }
  }
}

TEST_F(MultiAppTest, StreamingMultiAppMatchesSoloRunsAtEveryThreadCount) {
  const std::vector<std::string> apps = fixy_->applications().names();
  const DatasetSceneSource source(dataset_->dataset);
  std::vector<BatchReport> solo;
  for (const std::string& app : apps) {
    BatchOptions options;
    options.num_threads = 1;
    auto result = fixy_->RankDatasetStreaming(source, {app}, options);
    ASSERT_TRUE(result.ok()) << app << ": " << result.status().ToString();
    solo.push_back(std::move(result->reports.front()));
  }
  for (int threads = 1; threads <= 8; ++threads) {
    BatchOptions options;
    options.num_threads = threads;
    StreamOptions stream;
    stream.decode_threads = 2;
    const auto multi =
        fixy_->RankDatasetStreaming(source, apps, options, stream);
    ASSERT_TRUE(multi.ok()) << "threads=" << threads;
    ASSERT_EQ(multi->reports.size(), apps.size());
    for (size_t a = 0; a < apps.size(); ++a) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " app=" + apps[a]);
      ExpectReportsIdentical(multi->reports[a], solo[a]);
    }
  }
}

TEST_F(MultiAppTest, StreamingMatchesBatchForTheSameRequest) {
  const std::vector<std::string> apps = fixy_->applications().names();
  const DatasetSceneSource source(dataset_->dataset);
  const auto batch = fixy_->RankDataset(dataset_->dataset, apps);
  const auto streamed = fixy_->RankDatasetStreaming(source, apps);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(streamed.ok());
  for (size_t a = 0; a < apps.size(); ++a) {
    SCOPED_TRACE(apps[a]);
    ExpectReportsIdentical(batch->reports[a], streamed->reports[a]);
  }
}

TEST_F(MultiAppTest, RequestOrderIsPreservedAndSelectionIsFree) {
  const std::vector<std::string> request = {"model-errors",
                                            "missing-tracks"};
  const auto multi = fixy_->RankDataset(dataset_->dataset, request);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->apps, request);
  const auto solo_me =
      fixy_->RankDataset(dataset_->dataset, Application::kModelErrors);
  ASSERT_TRUE(solo_me.ok());
  ExpectReportsIdentical(multi->reports[0], *solo_me);
}

TEST_F(MultiAppTest, UnknownAppFailsTheCall) {
  const auto result = fixy_->RankDataset(dataset_->dataset, {"frobnicate"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("test-user-app"),
            std::string::npos);
}

// ---- Shared-pass accounting. ----

// The tentpole invariant: a multi-application run associates each scene
// exactly once — rank.track_builds counts scenes, not scenes * apps — and
// the shared feature-score cache makes the whole run cheaper than the sum
// of solo runs (fewer KDE evaluations).
TEST_F(MultiAppTest, AssociationRunsOncePerSceneNotPerApp) {
  const std::vector<std::string> apps = fixy_->applications().names();
  BatchOptions options;
  options.collect_metrics = true;
  const auto multi = fixy_->RankDataset(dataset_->dataset, apps, options);
  ASSERT_TRUE(multi.ok());
  const auto& counters = multi->metrics.counters;
  ASSERT_TRUE(counters.count("rank.track_builds"));
  EXPECT_EQ(counters.at("rank.track_builds"),
            static_cast<int64_t>(dataset_->dataset.scenes.size()));

  int64_t solo_kde_total = 0;
  for (const std::string& app : apps) {
    const auto solo = fixy_->RankDataset(dataset_->dataset, {app}, options);
    ASSERT_TRUE(solo.ok());
    const auto& solo_counters = solo->metrics.counters;
    // Each solo run also associates once per scene.
    EXPECT_EQ(solo_counters.at("rank.track_builds"),
              static_cast<int64_t>(dataset_->dataset.scenes.size()));
    const auto kde = solo_counters.find("stats.kde_evals");
    if (kde != solo_counters.end()) solo_kde_total += kde->second;
    // Per-app keys carry the app's name.
    EXPECT_GT(solo_counters.at("rank." + app + ".factors"), 0);
  }
  const auto kde = counters.find("stats.kde_evals");
  ASSERT_NE(kde, counters.end());
  EXPECT_LT(kde->second, solo_kde_total)
      << "shared feature-score cache should eliminate repeated evaluations";
}

TEST_F(MultiAppTest, PerAppMetricsKeysAreDistinct) {
  BatchOptions options;
  options.collect_metrics = true;
  const std::vector<std::string> apps = fixy_->applications().names();
  const auto multi = fixy_->RankDataset(dataset_->dataset, apps, options);
  ASSERT_TRUE(multi.ok());
  for (size_t a = 0; a < apps.size(); ++a) {
    const std::string prefix = "rank." + apps[a] + ".";
    EXPECT_TRUE(multi->metrics.counters.count(prefix + "factors")) << apps[a];
    EXPECT_TRUE(multi->metrics.counters.count(prefix + "proposals"))
        << apps[a];
    EXPECT_TRUE(multi->metrics.timers_ms.count(prefix + "compile"))
        << apps[a];
    // The per-app reports carry no metrics in a multi-app run; the shared
    // snapshot lives on the MultiAppReport.
    EXPECT_TRUE(multi->reports[a].metrics.counters.empty());
  }
}

// ---- User applications end-to-end. ----

TEST_F(MultiAppTest, UserApplicationRanksEndToEnd) {
  // Registered through FixyOptions (fixture): listed, resolvable, ranked.
  const std::vector<std::string> names = fixy_->applications().names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names.back(), "test-user-app");

  BatchOptions options;
  options.collect_metrics = true;
  const auto multi =
      fixy_->RankDataset(dataset_->dataset, {"test-user-app"}, options);
  ASSERT_TRUE(multi.ok());
  const BatchReport& report = multi->reports.front();
  EXPECT_TRUE(report.all_ok());
  size_t total_proposals = 0;
  for (const SceneOutcome& outcome : report.outcomes) {
    total_proposals += outcome.proposals.size();
  }
  EXPECT_GT(total_proposals, 0u);
  EXPECT_EQ(
      multi->metrics.counters.at("rank.test-user-app.proposals"),
      static_cast<int64_t>(total_proposals));

  // The per-scene facade resolves the same registry name.
  const auto found =
      fixy_->Find(dataset_->dataset.scenes.front(), "test-user-app");
  ASSERT_TRUE(found.ok());
  ExpectProposalsIdentical(*found, report.outcomes.front().proposals);
}

// ---- Top-k pruning byte-identity. ----

// The pruning guarantee (DESIGN.md §11): with top_k_per_class = k, an
// opted-in application's per-scene proposals, cut to the per-class top k,
// are byte-identical to the unpruned run's — while provably-unrankable
// tracks skip factor compilation entirely.
TEST_F(MultiAppTest, TopKPruningMatchesUnprunedAfterTopKPerClass) {
  const std::vector<std::string> apps = {"missing-tracks", "model-errors"};
  for (const int k : {1, 3}) {
    FixyOptions options;
    options.application.top_k_per_class = k;
    Fixy pruned(std::move(options));
    const sim::GeneratedDataset training =
        sim::GenerateDataset(*profile_, "multiapp_train", 4, 92);
    ASSERT_TRUE(pruned.Learn(training.dataset).ok());

    BatchOptions batch;
    batch.num_threads = 1;
    batch.collect_metrics = true;
    const auto pruned_run =
        pruned.RankDataset(dataset_->dataset, apps, batch);
    ASSERT_TRUE(pruned_run.ok()) << "k=" << k;
    const auto baseline = fixy_->RankDataset(dataset_->dataset, apps, batch);
    ASSERT_TRUE(baseline.ok());

    int64_t pruned_tracks = 0;
    for (size_t a = 0; a < apps.size(); ++a) {
      const BatchReport& p = pruned_run->reports[a];
      const BatchReport& u = baseline->reports[a];
      ASSERT_EQ(p.outcomes.size(), u.outcomes.size());
      for (size_t s = 0; s < p.outcomes.size(); ++s) {
        SCOPED_TRACE("k=" + std::to_string(k) + " app=" + apps[a] +
                     " scene=" + u.outcomes[s].scene_name);
        ASSERT_TRUE(p.outcomes[s].ok());
        ExpectProposalsIdentical(
            TopKPerClass(p.outcomes[s].proposals, static_cast<size_t>(k)),
            TopKPerClass(u.outcomes[s].proposals, static_cast<size_t>(k)));
      }
      const auto it = pruned_run->metrics.counters.find(
          "rank." + apps[a] + ".pruned_tracks");
      if (it != pruned_run->metrics.counters.end()) {
        pruned_tracks += it->second;
      }
    }
    // The dataset has far more candidate tracks than k per class, so
    // pruning must actually fire — otherwise this test only proves the
    // flag is ignored.
    EXPECT_GT(pruned_tracks, 0) << "k=" << k;
  }
}

TEST_F(MultiAppTest, TopKPruningIsThreadCountInvariant) {
  FixyOptions options;
  options.application.top_k_per_class = 2;
  Fixy pruned(std::move(options));
  const sim::GeneratedDataset training =
      sim::GenerateDataset(*profile_, "multiapp_train", 4, 92);
  ASSERT_TRUE(pruned.Learn(training.dataset).ok());
  const std::vector<std::string> apps = {"missing-tracks", "model-errors"};
  BatchOptions serial;
  serial.num_threads = 1;
  const auto baseline = pruned.RankDataset(dataset_->dataset, apps, serial);
  ASSERT_TRUE(baseline.ok());
  for (int threads = 2; threads <= 8; threads += 3) {
    BatchOptions batch;
    batch.num_threads = threads;
    const auto run = pruned.RankDataset(dataset_->dataset, apps, batch);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    for (size_t a = 0; a < apps.size(); ++a) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " app=" + apps[a]);
      ExpectReportsIdentical(run->reports[a], baseline->reports[a]);
    }
  }
}

// Applications without a prunable_tracks hook (missing-obs ranks bundles,
// not tracks) ignore top_k_per_class entirely.
TEST_F(MultiAppTest, NonPrunableAppsAreUnaffectedByTopK) {
  FixyOptions options;
  options.application.top_k_per_class = 1;
  Fixy pruned(std::move(options));
  const sim::GeneratedDataset training =
      sim::GenerateDataset(*profile_, "multiapp_train", 4, 92);
  ASSERT_TRUE(pruned.Learn(training.dataset).ok());
  const auto run = pruned.RankDataset(dataset_->dataset, {"missing-obs"});
  const auto baseline = fixy_->RankDataset(dataset_->dataset, {"missing-obs"});
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(baseline.ok());
  ExpectReportsIdentical(run->reports.front(), baseline->reports.front());
}

// ---- Kernel dispatch byte-identity through the whole pipeline. ----

// The SIMD contract one level up: ranked proposals are byte-identical
// whichever kernel the KDE dispatches to, at several thread counts. (The
// learned model is rebuilt under each kernel so even the fitted
// mode-density constants go through the pinned code path.)
TEST_F(MultiAppTest, ProposalsAreByteIdenticalAcrossSimdKernels) {
  if (!stats::simd::KernelAvailable(stats::simd::Kernel::kAvx2)) {
    GTEST_SKIP() << "no AVX2 on this CPU; nothing to compare";
  }
  const std::vector<std::string> apps = kStandardApps;
  const sim::GeneratedDataset training =
      sim::GenerateDataset(*profile_, "multiapp_train", 4, 92);
  std::vector<std::vector<BatchReport>> per_kernel;
  for (const auto kernel :
       {stats::simd::Kernel::kScalar, stats::simd::Kernel::kAvx2}) {
    ASSERT_TRUE(stats::simd::SetKernelForTesting(kernel));
    FixyOptions plain;
    Fixy fixy(std::move(plain));
    ASSERT_TRUE(fixy.Learn(training.dataset).ok());
    std::vector<BatchReport> reports;
    for (const int threads : {1, 2, 8}) {
      BatchOptions batch;
      batch.num_threads = threads;
      auto run = fixy.RankDataset(dataset_->dataset, apps, batch);
      ASSERT_TRUE(run.ok()) << "threads=" << threads;
      for (BatchReport& report : run->reports) {
        reports.push_back(std::move(report));
      }
    }
    per_kernel.push_back(std::move(reports));
  }
  stats::simd::ClearKernelOverrideForTesting();
  ASSERT_EQ(per_kernel[0].size(), per_kernel[1].size());
  for (size_t i = 0; i < per_kernel[0].size(); ++i) {
    SCOPED_TRACE("report " + std::to_string(i));
    ExpectReportsIdentical(per_kernel[0][i], per_kernel[1][i]);
  }
}

TEST_F(MultiAppTest, SingleAppWrappersMatchNameAddressedRuns) {
  const auto wrapped =
      fixy_->RankDataset(dataset_->dataset, Application::kMissingObservations);
  const auto named = fixy_->RankDataset(dataset_->dataset, {"missing-obs"});
  ASSERT_TRUE(wrapped.ok());
  ASSERT_TRUE(named.ok());
  ExpectReportsIdentical(*wrapped, named->reports.front());
}

}  // namespace
}  // namespace fixy
