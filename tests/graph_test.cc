// Tests for src/graph: factor graph compilation, structure (bipartite
// invariants), and Section 6 scoring semantics — including the paper's
// worked example: (ln 0.37 + ln 0.39 + ln 0.21) / 3 = -1.17.
#include <gtest/gtest.h>

#include <cmath>

#include "dsl/feature_distribution.h"
#include "graph/factor_graph.h"
#include "stats/lambda_distribution.h"

namespace fixy {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source, double x,
                    int frame, ObjectClass cls = ObjectClass::kCar) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = cls;
  obs.box = geom::Box3d({x, 0, 0.85}, 4.5, 1.9, 1.7, 0.0);
  obs.frame_index = frame;
  obs.timestamp = frame * 0.1;
  obs.confidence = source == ObservationSource::kModel ? 0.9 : 1.0;
  return obs;
}

ObservationBundle MakeBundle(int frame, std::vector<Observation> obs) {
  ObservationBundle bundle;
  bundle.frame_index = frame;
  bundle.timestamp = frame * 0.1;
  bundle.ego_position = {0, 0};
  bundle.observations = std::move(obs);
  return bundle;
}

// A track of `n` single-observation bundles.
Track SimpleTrack(TrackId id, int n) {
  Track track(id);
  for (int b = 0; b < n; ++b) {
    track.AddBundle(MakeBundle(
        b, {MakeObs(id * 100 + static_cast<ObservationId>(b),
                    ObservationSource::kModel, 10.0 + 0.5 * b, b)}));
  }
  return track;
}

// Feature stubs returning constants, so factor scores are exact.
class ConstObsFeature final : public ObservationFeature {
 public:
  std::string name() const override { return "const_obs"; }
  std::optional<double> Compute(const Observation&,
                                const FeatureContext&) const override {
    return 0.0;
  }
};

class ConstBundleFeature final : public BundleFeature {
 public:
  std::string name() const override { return "const_bundle"; }
  std::optional<double> Compute(const ObservationBundle&,
                                const FeatureContext&) const override {
    return 0.0;
  }
};

class ConstTransitionFeature final : public TransitionFeature {
 public:
  std::string name() const override { return "const_trans"; }
  std::optional<double> Compute(const ObservationBundle&,
                                const ObservationBundle&,
                                const FeatureContext&) const override {
    return 0.0;
  }
};

class ConstTrackFeature final : public TrackFeature {
 public:
  std::string name() const override { return "const_track"; }
  std::optional<double> Compute(const Track&,
                                const FeatureContext&) const override {
    return 0.0;
  }
};

// A feature that never applies.
class NeverFeature final : public ObservationFeature {
 public:
  std::string name() const override { return "never"; }
  std::optional<double> Compute(const Observation&,
                                const FeatureContext&) const override {
    return std::nullopt;
  }
};

stats::DistributionPtr ConstDistribution(double value) {
  return std::make_shared<stats::LambdaDistribution>(
      "const", [value](double) { return value; });
}

template <typename F>
FeatureDistribution Fd(double score) {
  return FeatureDistribution(std::make_shared<F>(), ConstDistribution(score));
}

// ------------------------------------------------------------ Structure

TEST(FactorGraphTest, VariablesMatchObservations) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 3));
  tracks.tracks.push_back(SimpleTrack(1, 2));
  LoaSpec spec;
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->variables().size(), 5u);
  EXPECT_TRUE(graph->factors().empty());
  EXPECT_TRUE(graph->Validate().ok());
}

TEST(FactorGraphTest, ObservationFactorsOnePerObservation) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 4));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstObsFeature>(0.5));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->factors().size(), 4u);
  for (const FactorNode& factor : graph->factors()) {
    EXPECT_EQ(factor.variables.size(), 1u);
    EXPECT_DOUBLE_EQ(factor.score, 0.5);
    EXPECT_EQ(factor.element.kind, FeatureKind::kObservation);
  }
  EXPECT_TRUE(graph->Validate().ok());
}

TEST(FactorGraphTest, BundleFactorConnectsAllMembers) {
  TrackSet tracks;
  Track track(0);
  track.AddBundle(MakeBundle(
      0, {MakeObs(1, ObservationSource::kHuman, 10, 0),
          MakeObs(2, ObservationSource::kModel, 10.05, 0)}));
  tracks.tracks.push_back(std::move(track));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstBundleFeature>(0.6));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->factors().size(), 1u);
  EXPECT_EQ(graph->factors()[0].variables.size(), 2u);
}

TEST(FactorGraphTest, TransitionFactorsSpanAdjacentBundles) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 4));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstTransitionFeature>(0.4));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  // 4 bundles -> 3 transitions, each connecting 2 observations.
  ASSERT_EQ(graph->factors().size(), 3u);
  for (const FactorNode& factor : graph->factors()) {
    EXPECT_EQ(factor.variables.size(), 2u);
    EXPECT_EQ(factor.element.kind, FeatureKind::kTransition);
  }
}

TEST(FactorGraphTest, TrackFactorConnectsEverything) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 5));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstTrackFeature>(0.7));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->factors().size(), 1u);
  EXPECT_EQ(graph->factors()[0].variables.size(), 5u);
}

TEST(FactorGraphTest, InapplicableFeatureProducesNoFactors) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 3));
  LoaSpec spec;
  spec.feature_distributions.emplace_back(std::make_shared<NeverFeature>(),
                                          ConstDistribution(0.9));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->factors().empty());
}

TEST(FactorGraphTest, RejectsEmptyBundle) {
  TrackSet tracks;
  Track track(0);
  track.AddBundle(MakeBundle(0, {}));
  tracks.tracks.push_back(std::move(track));
  const auto graph = FactorGraph::Compile(tracks, LoaSpec{}, 10.0);
  EXPECT_FALSE(graph.ok());
}

TEST(FactorGraphTest, VariableIndexLookup) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 2));
  tracks.tracks.push_back(SimpleTrack(1, 3));
  const auto graph = FactorGraph::Compile(tracks, LoaSpec{}, 10.0);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->VariableIndex(0, 0, 0), 0u);
  EXPECT_EQ(graph->VariableIndex(0, 1, 0), 1u);
  EXPECT_EQ(graph->VariableIndex(1, 0, 0), 2u);
  EXPECT_EQ(graph->VariableIndex(1, 2, 0), 4u);
}

// Out-of-range queries return nullopt, never abort: a graph compiled from
// untrusted input is queried with indices the caller did not validate.
TEST(FactorGraphTest, VariableIndexOutOfRangeYieldsNullopt) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 2));
  const auto graph = FactorGraph::Compile(tracks, LoaSpec{}, 10.0);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->VariableIndex(1, 0, 0).has_value());   // bad track
  EXPECT_FALSE(graph->VariableIndex(0, 2, 0).has_value());   // bad bundle
  EXPECT_FALSE(graph->VariableIndex(0, 0, 5).has_value());   // bad obs
  EXPECT_FALSE(graph->VariableIndex(99, 99, 99).has_value());
}

TEST(FactorGraphScoringTest, OutOfRangeScoreQueriesYieldNullopt) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 2));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstObsFeature>(0.5));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->ScoreTrack(7).has_value());
  EXPECT_FALSE(graph->ScoreBundle(0, 9).has_value());
  EXPECT_FALSE(graph->ScoreBundle(3, 0).has_value());
  EXPECT_FALSE(graph->ScoreObservation(1000).has_value());
  EXPECT_FALSE(graph->ScoreVariableSet({0, 1000}).has_value());
}

TEST(FactorGraphTest, ToStringListsNodesAndFactors) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 2));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstObsFeature>(0.5));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  const std::string s = graph->ToString();
  EXPECT_NE(s.find("2 variables"), std::string::npos);
  EXPECT_NE(s.find("2 factors"), std::string::npos);
}

// -------------------------------------------------------------- Scoring

TEST(FactorGraphScoringTest, PaperWorkedExample) {
  // Section 6: a track with two observations (volumes scoring 0.37 and
  // 0.39) and one velocity transition scoring 0.21 has score
  // (ln 0.37 + ln 0.39 + ln 0.21) / 3 = -1.17.
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 2));

  // Distinct per-observation volume scores: use a feature of the box
  // center to key the score.
  class VolumeScoreFeature final : public ObservationFeature {
   public:
    std::string name() const override { return "volume_like"; }
    std::optional<double> Compute(const Observation& obs,
                                  const FeatureContext&) const override {
      return obs.frame_index == 0 ? 0.0 : 1.0;
    }
  };
  const auto volume_dist = std::make_shared<stats::LambdaDistribution>(
      "volume_scores",
      [](double which) { return which < 0.5 ? 0.37 : 0.39; });

  LoaSpec spec;
  spec.feature_distributions.emplace_back(
      std::make_shared<VolumeScoreFeature>(), volume_dist);
  spec.feature_distributions.push_back(Fd<ConstTransitionFeature>(0.21));

  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->factors().size(), 3u);
  const auto score = graph->ScoreTrack(0);
  ASSERT_TRUE(score.has_value());
  const double expected =
      (std::log(0.37) + std::log(0.39) + std::log(0.21)) / 3.0;
  EXPECT_NEAR(*score, expected, 1e-12);
  EXPECT_NEAR(*score, -1.17, 0.005);
}

TEST(FactorGraphScoringTest, ComponentScoreCountsFactorsOnce) {
  // A track factor touches all observations; scoring the track must count
  // it once, not once per observation.
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 3));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstTrackFeature>(0.5));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  const auto score = graph->ScoreTrack(0);
  ASSERT_TRUE(score.has_value());
  EXPECT_NEAR(*score, std::log(0.5), 1e-12);
}

TEST(FactorGraphScoringTest, NormalizationMakesLengthsComparable) {
  // Two tracks with identical per-factor scores but different lengths get
  // the same normalized score (the stated purpose of normalization).
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 3));
  tracks.tracks.push_back(SimpleTrack(1, 10));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstObsFeature>(0.5));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  const auto short_score = graph->ScoreTrack(0);
  const auto long_score = graph->ScoreTrack(1);
  ASSERT_TRUE(short_score.has_value());
  ASSERT_TRUE(long_score.has_value());
  EXPECT_NEAR(*short_score, *long_score, 1e-12);
  EXPECT_NEAR(*short_score, std::log(0.5), 1e-12);
}

TEST(FactorGraphScoringTest, ObservationScoreSumsItsFactors) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 2));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstObsFeature>(0.5));
  spec.feature_distributions.push_back(Fd<ConstTransitionFeature>(0.25));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  // Observation 0: one obs factor (0.5) + one transition factor (0.25),
  // normalized by 2.
  const auto score = graph->ScoreObservation(0);
  ASSERT_TRUE(score.has_value());
  EXPECT_NEAR(*score, (std::log(0.5) + std::log(0.25)) / 2.0, 1e-12);
}

TEST(FactorGraphScoringTest, BundleScoreIncludesAdjacentTransitions) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 3));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstTransitionFeature>(0.3));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  // Middle bundle participates in both transitions.
  const auto middle = graph->ScoreBundle(0, 1);
  ASSERT_TRUE(middle.has_value());
  EXPECT_NEAR(*middle, std::log(0.3), 1e-12);
  // Edge bundle participates in one.
  const auto edge = graph->ScoreBundle(0, 0);
  ASSERT_TRUE(edge.has_value());
  EXPECT_NEAR(*edge, std::log(0.3), 1e-12);
}

TEST(FactorGraphScoringTest, NoFactorsMeansNoScore) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 2));
  const auto graph = FactorGraph::Compile(tracks, LoaSpec{}, 10.0);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->ScoreTrack(0).has_value());
  EXPECT_FALSE(graph->ScoreObservation(0).has_value());
}

TEST(FactorGraphScoringTest, HigherFactorScoresGiveHigherComponentScores) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 3));
  for (double p : {0.1, 0.5, 0.9}) {
    LoaSpec spec;
    spec.feature_distributions.push_back(Fd<ConstObsFeature>(p));
    const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
    ASSERT_TRUE(graph.ok());
    EXPECT_NEAR(*graph->ScoreTrack(0), std::log(p), 1e-12);
  }
}

// Property: component scores are always finite and non-positive (factor
// scores live in (0, 1]).
class GraphScoreBoundsTest : public ::testing::TestWithParam<double> {};

TEST_P(GraphScoreBoundsTest, ScoresFiniteAndNonPositive) {
  TrackSet tracks;
  tracks.tracks.push_back(SimpleTrack(0, 6));
  LoaSpec spec;
  spec.feature_distributions.push_back(Fd<ConstObsFeature>(GetParam()));
  spec.feature_distributions.push_back(
      Fd<ConstTransitionFeature>(GetParam()));
  const auto graph = FactorGraph::Compile(tracks, spec, 10.0);
  ASSERT_TRUE(graph.ok());
  const auto score = graph->ScoreTrack(0);
  ASSERT_TRUE(score.has_value());
  EXPECT_TRUE(std::isfinite(*score));
  EXPECT_LE(*score, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(FactorScores, GraphScoreBoundsTest,
                         ::testing::Values(1e-9, 1e-4, 0.01, 0.37, 0.5, 0.99,
                                           1.0));

}  // namespace
}  // namespace fixy
