// SIMD-vs-scalar equality tests for the KDE hot-path kernel (DESIGN.md
// §11). The dispatch contract is *bit* identity: every comparison here is
// EXPECT_EQ on doubles, no tolerances. Randomized sweeps cover the lane
// remainders (n mod 4) and unaligned windows; the adversarial cases pin
// the known numerical edges — cutoff boundaries, the minimum bandwidth,
// huge sample counts, empty windows, and non-finite queries.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <random>
#include <vector>

#include "stats/kde.h"
#include "stats/simd.h"

namespace fixy::stats {
namespace {

namespace simd = ::fixy::stats::simd;

// Runs `fn` once per kernel and returns the per-kernel results, or nullopt
// when the CPU has no second kernel to compare against.
template <typename Fn>
std::optional<std::pair<std::vector<double>, std::vector<double>>>
RunUnderBothKernels(Fn&& fn) {
  if (!simd::KernelAvailable(simd::Kernel::kAvx2)) return std::nullopt;
  EXPECT_TRUE(simd::SetKernelForTesting(simd::Kernel::kScalar));
  std::vector<double> scalar = fn();
  EXPECT_TRUE(simd::SetKernelForTesting(simd::Kernel::kAvx2));
  std::vector<double> avx2 = fn();
  simd::ClearKernelOverrideForTesting();
  return std::make_pair(std::move(scalar), std::move(avx2));
}

void ExpectBitIdentical(const std::vector<double>& scalar,
                        const std::vector<double>& avx2) {
  ASSERT_EQ(scalar.size(), avx2.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i], avx2[i]) << "element " << i;
  }
}

class SimdKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::KernelAvailable(simd::Kernel::kAvx2)) {
      GTEST_SKIP() << "no AVX2 on this CPU; nothing to compare";
    }
  }
  void TearDown() override { simd::ClearKernelOverrideForTesting(); }
};

TEST(SimdDispatchTest, OverrideRoundTrips) {
  EXPECT_TRUE(simd::KernelAvailable(simd::Kernel::kScalar));
  EXPECT_TRUE(simd::SetKernelForTesting(simd::Kernel::kScalar));
  EXPECT_EQ(simd::ActiveKernel(), simd::Kernel::kScalar);
  simd::ClearKernelOverrideForTesting();
  if (simd::KernelAvailable(simd::Kernel::kAvx2)) {
    EXPECT_TRUE(simd::SetKernelForTesting(simd::Kernel::kAvx2));
    EXPECT_EQ(simd::ActiveKernel(), simd::Kernel::kAvx2);
    simd::ClearKernelOverrideForTesting();
  }
  EXPECT_STREQ(simd::KernelName(simd::Kernel::kScalar), "scalar");
  EXPECT_STREQ(simd::KernelName(simd::Kernel::kAvx2), "avx2");
}

TEST_F(SimdKernelTest, RandomizedWindowSumsAreBitIdentical) {
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> value(-50.0, 50.0);
  std::uniform_real_distribution<double> bw(1e-3, 10.0);
  // Window lengths sweep every lane remainder and both the sub-lane and
  // multi-lane regimes.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                         size_t{4}, size_t{5}, size_t{7}, size_t{8},
                         size_t{9}, size_t{31}, size_t{64}, size_t{257}}) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<double> samples(n);
      for (double& s : samples) s = value(rng);
      const double x = value(rng);
      const double inv_bw = 1.0 / bw(rng);
      const auto runs = RunUnderBothKernels([&] {
        return std::vector<double>{
            simd::GaussianWindowSum(samples.data(), n, x, inv_bw)};
      });
      ASSERT_TRUE(runs.has_value());
      ExpectBitIdentical(runs->first, runs->second);
    }
  }
}

TEST_F(SimdKernelTest, RandomizedDensitiesAreBitIdentical) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> sample(0.0, 3.0);
  for (const size_t n : {size_t{1}, size_t{13}, size_t{200}, size_t{1000}}) {
    std::vector<double> samples(n);
    for (double& s : samples) s = sample(rng);
    std::vector<double> queries(337);
    for (double& q : queries) q = sample(rng);
    const auto runs = RunUnderBothKernels([&] {
      // Fit under the pinned kernel too: the constructor's mode scan runs
      // the kernel, so mode_density_ must also be dispatch-invariant.
      auto kde = GaussianKde::Fit(samples);
      EXPECT_TRUE(kde.ok());
      std::vector<double> out(queries.size());
      kde->DensityBatch(queries, out);
      out.push_back(kde->ModeDensity());
      for (double q : queries) out.push_back(kde->NormalizedScore(q));
      return out;
    });
    ASSERT_TRUE(runs.has_value());
    ExpectBitIdentical(runs->first, runs->second);
  }
}

TEST_F(SimdKernelTest, CutoffBoundaryQueriesAreBitIdentical) {
  // Queries sitting exactly on (and one ULP to either side of) the
  // 8-bandwidth cutoff: the window-advance comparisons `< lo_value` /
  // `<= hi_value` flip at these points, so both kernels must agree on
  // windows of length 0, 1, and n.
  const double h = 0.25;
  const std::vector<double> samples = {-1.0, -0.5, 0.0, 0.5, 1.0};
  auto kde = GaussianKde::FitWithBandwidth(samples, h);
  ASSERT_TRUE(kde.ok());
  std::vector<double> queries;
  for (double s : samples) {
    for (double edge : {s - 8.0 * h, s + 8.0 * h}) {
      queries.push_back(std::nextafter(edge, -1e300));
      queries.push_back(edge);
      queries.push_back(std::nextafter(edge, 1e300));
    }
  }
  const auto runs = RunUnderBothKernels([&] {
    std::vector<double> out;
    for (double q : queries) out.push_back(kde->Density(q));
    std::vector<double> batch(queries.size());
    kde->DensityBatch(queries, batch);
    out.insert(out.end(), batch.begin(), batch.end());
    return out;
  });
  ASSERT_TRUE(runs.has_value());
  ExpectBitIdentical(runs->first, runs->second);
  // Per-query and batch evaluation agree with themselves per kernel.
  const size_t half = queries.size();
  for (size_t i = 0; i < half; ++i) {
    EXPECT_EQ(runs->first[i], runs->first[half + i]) << "query " << i;
  }
}

TEST_F(SimdKernelTest, MinimumBandwidthIsBitIdentical) {
  // The smallest bandwidth FitWithBandwidth admits (1e-6): inv_bandwidth
  // is 1e6 and kernel arguments swing across the full [-32, 0] range
  // within a few microns of a sample, stressing the exp approximation's
  // reduction constants.
  const std::vector<double> samples = {0.0, 1e-7, 2e-7, 5e-7, 1e-6, 2e-6};
  auto kde = GaussianKde::FitWithBandwidth(samples, 1e-6);
  ASSERT_TRUE(kde.ok());
  std::vector<double> queries;
  for (int i = -40; i <= 40; ++i) {
    queries.push_back(static_cast<double>(i) * 1e-7);
  }
  const auto runs = RunUnderBothKernels([&] {
    std::vector<double> out(queries.size());
    kde->DensityBatch(queries, out);
    return out;
  });
  ASSERT_TRUE(runs.has_value());
  ExpectBitIdentical(runs->first, runs->second);
  EXPECT_GT(runs->first[40], 0.0);  // query 0.0 sits on a sample
}

TEST_F(SimdKernelTest, HugeSampleCountIsBitIdentical) {
  // Large windows exercise long accumulation chains where any reassociation
  // between the kernels would compound: 20k clustered samples with a pinned
  // bandwidth give ~2000-element windows (the fitted-bandwidth mode scan
  // over more samples than this is too slow for a unit test in scalar).
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> value(0.0, 1.0);
  std::vector<double> samples(20000);
  for (double& s : samples) s = value(rng);
  std::vector<double> queries(128);
  for (double& q : queries) q = value(rng);
  const auto runs = RunUnderBothKernels([&] {
    auto kde = GaussianKde::FitWithBandwidth(samples, 0.00625);
    EXPECT_TRUE(kde.ok());
    std::vector<double> out(queries.size());
    kde->DensityBatch(queries, out);
    return out;
  });
  ASSERT_TRUE(runs.has_value());
  ExpectBitIdentical(runs->first, runs->second);
  for (double d : runs->first) EXPECT_GT(d, 0.0);
}

TEST_F(SimdKernelTest, EmptyWindowsAndNonFiniteQueriesAreZero) {
  const std::vector<double> samples = {0.0, 0.1, 0.2};
  auto kde = GaussianKde::FitWithBandwidth(samples, 0.01);
  ASSERT_TRUE(kde.ok());
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Far-away, infinite, and NaN queries all have zero density; the batch
  // path partitions the non-finite ones out before sorting.
  const std::vector<double> queries = {1e9, -1e9, inf, -inf, nan, 0.1};
  const auto runs = RunUnderBothKernels([&] {
    std::vector<double> out(queries.size());
    kde->DensityBatch(queries, out);
    out.push_back(simd::GaussianWindowSum(samples.data(), 0, 0.0, 1.0));
    for (double q : queries) out.push_back(kde->Density(q));
    return out;
  });
  ASSERT_TRUE(runs.has_value());
  ExpectBitIdentical(runs->first, runs->second);
  const std::vector<double>& out = runs->first;
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], 0.0) << "query " << i;
    EXPECT_EQ(out[7 + i], 0.0) << "per-query " << i;  // Density() agrees
  }
  EXPECT_GT(out[5], 0.0);        // the one in-range query
  EXPECT_EQ(out[6], 0.0);        // n == 0 window sums to zero
  EXPECT_EQ(out[12], out[5]);    // batch == per-query on the finite one
}

TEST_F(SimdKernelTest, UnsortedBatchesAreBitIdentical) {
  std::mt19937_64 rng(123);
  std::normal_distribution<double> sample(0.0, 1.0);
  std::vector<double> samples(500);
  for (double& s : samples) s = sample(rng);
  auto kde = GaussianKde::Fit(samples);
  ASSERT_TRUE(kde.ok());
  // Deliberately unsorted with duplicates: the permutation path must give
  // the same windows (and therefore bits) as sorted evaluation.
  std::vector<double> queries(211);
  for (double& q : queries) q = sample(rng);
  queries[10] = queries[100];
  queries[50] = queries[0];
  const auto runs = RunUnderBothKernels([&] {
    std::vector<double> out(queries.size());
    kde->DensityBatch(queries, out);
    return out;
  });
  ASSERT_TRUE(runs.has_value());
  ExpectBitIdentical(runs->first, runs->second);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(runs->first[i], kde->Density(queries[i])) << "query " << i;
  }
}

}  // namespace
}  // namespace fixy::stats
