// Tests for src/core/proposal_io: proposal-list round-trips and malformed
// document rejection.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/proposal_io.h"

namespace fixy {
namespace {

ErrorProposal MakeProposal(int i) {
  ErrorProposal p;
  p.scene_name = "scene_" + std::to_string(i % 3);
  p.kind = static_cast<ProposalKind>(i % 3);
  p.track_id = static_cast<TrackId>(100 + i);
  p.frame_index = 10 + i;
  p.first_frame = 5 + i;
  p.last_frame = 20 + i;
  p.object_class = static_cast<ObjectClass>(i % kNumObjectClasses);
  p.score = -0.1 * i;
  p.model_confidence = 0.05 * (i % 20);
  p.box = geom::Box3d({1.5 * i, -0.5 * i, 0.9}, 4.0 + 0.1 * i, 1.9, 1.7,
                      0.01 * i);
  return p;
}

TEST(ProposalIoTest, RoundTripPreservesEverything) {
  std::vector<ErrorProposal> original;
  for (int i = 0; i < 12; ++i) original.push_back(MakeProposal(i));
  const auto loaded = ProposalsFromJson(ProposalsToJson(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const ErrorProposal& a = original[i];
    const ErrorProposal& b = (*loaded)[i];
    EXPECT_EQ(a.scene_name, b.scene_name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.track_id, b.track_id);
    EXPECT_EQ(a.frame_index, b.frame_index);
    EXPECT_EQ(a.first_frame, b.first_frame);
    EXPECT_EQ(a.last_frame, b.last_frame);
    EXPECT_EQ(a.object_class, b.object_class);
    EXPECT_DOUBLE_EQ(a.score, b.score);
    EXPECT_DOUBLE_EQ(a.model_confidence, b.model_confidence);
    EXPECT_DOUBLE_EQ(a.box.center.x, b.box.center.x);
    EXPECT_DOUBLE_EQ(a.box.yaw, b.box.yaw);
  }
}

TEST(ProposalIoTest, EmptyListRoundTrips) {
  const auto loaded = ProposalsFromJson(ProposalsToJson({}));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(ProposalIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fixy_proposals.json")
          .string();
  std::vector<ErrorProposal> original = {MakeProposal(1), MakeProposal(2)};
  ASSERT_TRUE(SaveProposals(original, path).ok());
  const auto loaded = LoadProposals(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::filesystem::remove(path);
}

TEST(ProposalIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadProposals("/nonexistent/p.json").status().code(),
            StatusCode::kIoError);
}

TEST(ProposalIoTest, RejectsMalformedDocuments) {
  for (const char* doc :
       {R"({"format":"other","version":1,"proposals":[]})",
        R"({"format":"fixy-proposals","version":1})",
        R"({"format":"fixy-proposals","version":1,"proposals":[{}]})",
        R"({"format":"fixy-proposals","version":1,"proposals":[
             {"scene":"s","kind":"warp","track_id":1,"frame":0,
              "first_frame":0,"last_frame":0,"class":"car","score":0,
              "model_confidence":0,
              "box":{"cx":0,"cy":0,"cz":0,"l":1,"w":1,"h":1,"yaw":0}}]})",
        "[]"}) {
    const auto parsed = json::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    EXPECT_FALSE(ProposalsFromJson(*parsed).ok()) << doc;
  }
}

TEST(ProposalIoTest, OrderIsPreserved) {
  std::vector<ErrorProposal> original;
  for (int i = 0; i < 5; ++i) {
    ErrorProposal p = MakeProposal(i);
    p.score = 1.0 - 0.2 * i;  // descending
    original.push_back(std::move(p));
  }
  const auto loaded = ProposalsFromJson(ProposalsToJson(original));
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 1; i < loaded->size(); ++i) {
    EXPECT_GT((*loaded)[i - 1].score, (*loaded)[i].score);
  }
}

}  // namespace
}  // namespace fixy
