// Integration tests: the full pipeline (simulate -> serialize -> learn ->
// rank -> evaluate) across modules, plus end-to-end determinism.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/model_assertions.h"
#include "baselines/uncertainty.h"
#include "core/engine.h"
#include "core/ranker.h"
#include "eval/metrics.h"
#include "io/scene_io.h"
#include "sim/generate.h"

namespace fixy {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    profile_ = new sim::SimProfile(sim::LyftLikeProfile());
    training_ = new sim::GeneratedDataset(
        sim::GenerateDataset(*profile_, "train", 6, 2024));
    fixy_ = new Fixy();
    ASSERT_TRUE(fixy_->Learn(training_->dataset).ok());
  }

  static void TearDownTestSuite() {
    delete fixy_;
    delete training_;
    delete profile_;
    fixy_ = nullptr;
    training_ = nullptr;
    profile_ = nullptr;
  }

  static sim::SimProfile* profile_;
  static sim::GeneratedDataset* training_;
  static Fixy* fixy_;
};

sim::SimProfile* PipelineTest::profile_ = nullptr;
sim::GeneratedDataset* PipelineTest::training_ = nullptr;
Fixy* PipelineTest::fixy_ = nullptr;

TEST_F(PipelineTest, MissingTracksRankAboveNoiseOnAverage) {
  // Across several validation scenes, Fixy's top-5 precision for missing
  // tracks must beat the random-ordering baseline's.
  double fixy_hits = 0;
  double rand_hits = 0;
  double scenes_with_errors = 0;
  for (int i = 0; i < 6; ++i) {
    const auto generated =
        sim::GenerateScene(*profile_, "val_" + std::to_string(i), 500 + i);
    const auto claimable = eval::ClaimableErrors(
        generated.ledger, ProposalKind::kMissingTrack, generated.scene.name());
    if (claimable.empty()) continue;
    scenes_with_errors += 1;
    const auto fixy_proposals = fixy_->FindMissingTracks(generated.scene);
    ASSERT_TRUE(fixy_proposals.ok());
    fixy_hits +=
        eval::PrecisionAtK(*fixy_proposals, claimable, 5).precision;
    const auto rand_proposals = baselines::ConsistencyAssertion(
        generated.scene, baselines::MaOrdering::kRandom, 99 + i);
    ASSERT_TRUE(rand_proposals.ok());
    rand_hits +=
        eval::PrecisionAtK(*rand_proposals, claimable, 5).precision;
  }
  ASSERT_GT(scenes_with_errors, 0);
  EXPECT_GT(fixy_hits, rand_hits);
}

TEST_F(PipelineTest, ModelErrorsBeatUncertaintySampling) {
  double fixy_precision = 0;
  double us_precision = 0;
  int scenes = 0;
  for (int i = 0; i < 4; ++i) {
    const auto generated =
        sim::GenerateScene(*profile_, "me_" + std::to_string(i), 900 + i);
    const auto claimable = eval::ClaimableErrors(
        generated.ledger, ProposalKind::kModelError, generated.scene.name());
    if (claimable.empty()) continue;
    ++scenes;
    const auto fixy_proposals = fixy_->FindModelErrors(generated.scene);
    ASSERT_TRUE(fixy_proposals.ok());
    fixy_precision +=
        eval::PrecisionAtK(*fixy_proposals, claimable, 10).precision;
    const auto us_proposals =
        baselines::UncertaintySampling(generated.scene);
    ASSERT_TRUE(us_proposals.ok());
    us_precision +=
        eval::PrecisionAtK(*us_proposals, claimable, 10).precision;
  }
  ASSERT_GT(scenes, 0);
  EXPECT_GT(fixy_precision, us_precision);
}

TEST_F(PipelineTest, SerializationRoundTripPreservesRanking) {
  const auto generated = sim::GenerateScene(*profile_, "roundtrip", 777);
  const auto direct = fixy_->FindMissingTracks(generated.scene);
  ASSERT_TRUE(direct.ok());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "fixy_integration").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(io::SaveScene(generated.scene, dir + "/scene.json").ok());
  const auto loaded = io::LoadScene(dir + "/scene.json");
  ASSERT_TRUE(loaded.ok());
  const auto via_disk = fixy_->FindMissingTracks(*loaded);
  ASSERT_TRUE(via_disk.ok());

  ASSERT_EQ(direct->size(), via_disk->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].track_id, (*via_disk)[i].track_id);
    EXPECT_NEAR((*direct)[i].score, (*via_disk)[i].score, 1e-9);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineTest, EndToEndDeterminism) {
  const auto generated = sim::GenerateScene(*profile_, "det", 31337);
  const auto a = fixy_->FindMissingTracks(generated.scene);
  const auto b = fixy_->FindMissingTracks(generated.scene);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].track_id, (*b)[i].track_id);
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST_F(PipelineTest, LearningTwiceGivesSameDistributions) {
  Fixy again;
  ASSERT_TRUE(again.Learn(training_->dataset).ok());
  const auto generated = sim::GenerateScene(*profile_, "twice", 4242);
  const auto a = fixy_->FindMissingTracks(generated.scene);
  const auto b = again.FindMissingTracks(generated.scene);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST_F(PipelineTest, InternalProfilePipelineAlsoWorks) {
  const auto internal_profile = sim::InternalLikeProfile();
  const auto internal_training =
      sim::GenerateDataset(internal_profile, "itrain", 4, 88);
  Fixy fixy;
  ASSERT_TRUE(fixy.Learn(internal_training.dataset).ok());
  sim::SceneGenOptions options;
  options.exact_missing_tracks = 6;
  const auto generated =
      sim::GenerateScene(internal_profile, "ival", 99, options);
  const auto proposals = fixy.FindMissingTracks(generated.scene);
  ASSERT_TRUE(proposals.ok());
  const auto claimable = eval::ClaimableErrors(
      generated.ledger, ProposalKind::kMissingTrack, generated.scene.name());
  EXPECT_EQ(claimable.size(), 6u);
  const auto recall = eval::RecallOf(*proposals, claimable);
  // Most injected missing tracks must be recoverable from the full
  // proposal list (detector recall bounds this below 100%).
  EXPECT_GE(recall.recall, 0.5);
}

TEST_F(PipelineTest, ProposalsCarryConsistentMetadata) {
  const auto generated = sim::GenerateScene(*profile_, "meta", 246);
  const auto proposals = fixy_->FindMissingTracks(generated.scene);
  ASSERT_TRUE(proposals.ok());
  for (const ErrorProposal& p : *proposals) {
    EXPECT_EQ(p.scene_name, generated.scene.name());
    EXPECT_LE(p.first_frame, p.frame_index);
    EXPECT_LE(p.frame_index, p.last_frame);
    EXPECT_TRUE(p.box.IsValid());
    EXPECT_GE(p.model_confidence, 0.0);
    EXPECT_LE(p.model_confidence, 1.0);
  }
}

TEST_F(PipelineTest, MaExclusionProtocolReducesClaimablePool) {
  // Section 8.4 protocol: errors found by appear/flicker/multibox are
  // excluded before evaluating Fixy.
  const auto generated = sim::GenerateScene(*profile_, "excl", 135);
  auto claimable = eval::ClaimableErrors(
      generated.ledger, ProposalKind::kModelError, generated.scene.name());
  const size_t before = claimable.size();
  std::vector<ErrorProposal> ma_found;
  for (const auto& result :
       {baselines::AppearAssertion(generated.scene),
        baselines::FlickerAssertion(generated.scene),
        baselines::MultiboxAssertion(generated.scene)}) {
    ASSERT_TRUE(result.ok());
    ma_found.insert(ma_found.end(), result->begin(), result->end());
  }
  std::vector<const sim::GtError*> remaining;
  for (const sim::GtError* error : claimable) {
    if (!eval::AnyProposalMatches(ma_found, *error)) {
      remaining.push_back(error);
    }
  }
  EXPECT_LE(remaining.size(), before);
}

}  // namespace
}  // namespace fixy
