// Tests for src/io/fxb: encode/decode round-trips, header and section
// validation on corrupt input, the mmap/buffered parity contract, and the
// dataset-directory cache workflow (build, fresh open, staleness).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/crc32.h"
#include "io/fxb.h"
#include "io/mapped_file.h"
#include "io/scene_io.h"
#include "obs/metrics.h"

namespace fixy::io {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source, double x,
                    int frame, double confidence = 1.0) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = ObjectClass::kTruck;
  obs.box = geom::Box3d({x, -2.5, 1.6}, 8.1, 2.8, 3.2, 0.31);
  obs.frame_index = frame;
  obs.timestamp = frame / 5.0;
  obs.confidence = confidence;
  return obs;
}

Scene MakeScene(const std::string& name, int frames = 4) {
  Scene scene(name, 5.0);
  ObservationId id = 1;
  for (int f = 0; f < frames; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f / 5.0;
    frame.ego_position = {1.6 * f, 0.25};
    frame.ego_yaw = 0.01 * f;
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kHuman, 12.0 + f, f));
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kModel, 12.1 + f, f, 0.87));
    scene.AddFrame(std::move(frame));
  }
  return scene;
}

Dataset MakeDataset(int scenes = 3) {
  Dataset dataset;
  dataset.name = "fxb_test";
  for (int i = 0; i < scenes; ++i) {
    dataset.scenes.push_back(MakeScene("scene_" + std::to_string(i), 3 + i));
  }
  return dataset;
}

// Fabricated per-scene source records for in-memory blobs (no files on
// disk to stat): one per scene plus the manifest, with distinct
// size/mtime/crc values so map round-trips are observable.
std::vector<FxbSourceRecord> FakeSources(const Dataset& dataset) {
  std::vector<FxbSourceRecord> sources;
  for (size_t i = 0; i < dataset.scenes.size(); ++i) {
    sources.push_back({dataset.scenes[i].name() + ".fixy.json", 1024 + i,
                       100 + i, static_cast<uint32_t>(7 + i)});
  }
  sources.push_back({"manifest.json", 512, 999, 42});
  return sources;
}

std::string Encode(const Dataset& dataset) {
  auto blob = EncodeFxbDataset(dataset, FakeSources(dataset));
  EXPECT_TRUE(blob.ok()) << blob.status();
  return *blob;
}

std::string TempDir() {
  static int counter = 0;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("fixy_fxb_test_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

// Writes `value` at `offset` and refreshes the header CRC so the mutation
// reaches its own validation path rather than the checksum check.
template <typename T>
void PokeHeader(std::string* blob, size_t offset, T value) {
  std::memcpy(blob->data() + offset, &value, sizeof(T));
  const uint32_t crc = Crc32(blob->data(), kFxbHeaderCrcOffset);
  std::memcpy(blob->data() + kFxbHeaderCrcOffset, &crc, sizeof(crc));
}

TEST(FxbFormatTest, RoundTripPreservesEveryScene) {
  const Dataset dataset = MakeDataset();
  auto reader = FxbReader::FromBuffer(Encode(dataset));
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->dataset_name(), "fxb_test");
  EXPECT_EQ(reader->scene_count(), dataset.scenes.size());
  const std::vector<FxbSourceRecord> sources = FakeSources(dataset);
  EXPECT_EQ(reader->fingerprint(), FingerprintFromRecords(sources));
  EXPECT_EQ(reader->sources(), sources);
  for (size_t i = 0; i < dataset.scenes.size(); ++i) {
    const auto scene = reader->DecodeScene(i);
    ASSERT_TRUE(scene.ok()) << scene.status();
    // Bit-exact doubles: the canonical JSON serialization must match too.
    EXPECT_EQ(SceneToString(*scene), SceneToString(dataset.scenes[i]));
    EXPECT_EQ(reader->SceneNameHint(i), dataset.scenes[i].name());
  }
}

TEST(FxbFormatTest, EmptyDatasetRoundTrips) {
  Dataset dataset;
  dataset.name = "empty";
  auto reader = FxbReader::FromBuffer(Encode(dataset));
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->scene_count(), 0u);
  EXPECT_EQ(reader->dataset_name(), "empty");
}

TEST(FxbFormatTest, RejectsShortBlob) {
  const auto reader = FxbReader::FromBuffer(std::string(10, 'x'));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(FxbFormatTest, RejectsBadMagic) {
  std::string blob = Encode(MakeDataset(1));
  blob[0] = 'Z';
  const auto reader = FxbReader::FromBuffer(std::move(blob));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
}

TEST(FxbFormatTest, RejectsVersionMismatchWithValidChecksum) {
  std::string blob = Encode(MakeDataset(1));
  PokeHeader<uint32_t>(&blob, kFxbVersionOffset, kFxbVersion + 1);
  const auto reader = FxbReader::FromBuffer(std::move(blob));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(FxbFormatTest, RejectsHeaderChecksumMismatch) {
  std::string blob = Encode(MakeDataset(1));
  // Flip a header byte without refreshing the CRC.
  blob[kFxbSceneCountOffset] ^= 0x01;
  const auto reader = FxbReader::FromBuffer(std::move(blob));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FxbFormatTest, RejectsIndexChecksumMismatch) {
  std::string blob = Encode(MakeDataset(2));
  // Flip a byte inside the index region without refreshing the index CRC.
  uint64_t index_offset = 0;
  std::memcpy(&index_offset, blob.data() + kFxbIndexOffsetOffset, 8);
  blob[index_offset + kFxbIndexEntrySize] ^= 0x40;
  const auto reader = FxbReader::FromBuffer(std::move(blob));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FxbFormatTest, RejectsSourceMapChecksumMismatch) {
  std::string blob = Encode(MakeDataset(2));
  // The source map is the tail of the blob; flip its last byte without
  // refreshing the map CRC.
  blob[blob.size() - 1] ^= 0x40;
  const auto reader = FxbReader::FromBuffer(std::move(blob));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(reader.status().message().find("source map"), std::string::npos);
}

TEST(FxbFormatTest, RejectsSourceCountBelowSceneCount) {
  std::string blob = Encode(MakeDataset(2));
  PokeHeader<uint32_t>(&blob, kFxbSourceCountOffset, 1);
  const auto reader = FxbReader::FromBuffer(std::move(blob));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(FxbFormatTest, SceneSectionBytesVerifiesChecksum) {
  const Dataset dataset = MakeDataset(2);
  std::string blob = Encode(dataset);
  auto reader = FxbReader::FromBuffer(std::string(blob));
  ASSERT_TRUE(reader.ok()) << reader.status();
  const auto section = reader->SceneSectionBytes(0);
  ASSERT_TRUE(section.ok()) << section.status();
  const auto decoded = FxbReader::FromBuffer(std::move(blob))->DecodeScene(0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(reader->SceneSectionBytes(5).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FxbFormatTest, RejectsTruncatedBlob) {
  const std::string blob = Encode(MakeDataset(2));
  for (const size_t keep :
       {kFxbHeaderSize, blob.size() / 2, blob.size() - 3}) {
    const auto reader = FxbReader::FromBuffer(blob.substr(0, keep));
    EXPECT_FALSE(reader.ok()) << "survived truncation to " << keep;
  }
}

TEST(FxbFormatTest, CorruptSectionFailsOnlyThatScene) {
  const Dataset dataset = MakeDataset(3);
  std::string blob = Encode(dataset);
  // Locate scene 1's section through the index and damage one byte.
  uint64_t index_offset = 0;
  std::memcpy(&index_offset, blob.data() + kFxbIndexOffsetOffset, 8);
  uint64_t section_offset = 0;
  std::memcpy(&section_offset,
              blob.data() + index_offset + kFxbIndexEntrySize, 8);
  obs::MetricsCollector collector;
  {
    const obs::MetricsScope scope(&collector);
    blob[section_offset + 4] ^= 0x10;
    auto reader = FxbReader::FromBuffer(std::move(blob));
    ASSERT_TRUE(reader.ok()) << reader.status();
    EXPECT_TRUE(reader->DecodeScene(0).ok());
    const auto bad = reader->DecodeScene(1);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(bad.status().message().find("checksum"), std::string::npos);
    EXPECT_TRUE(reader->DecodeScene(2).ok());
  }
  const auto snapshot = collector.Snapshot();
  EXPECT_EQ(snapshot.counters.at("io.fxb.checksum_failures"), 1u);
  EXPECT_EQ(snapshot.counters.at("io.fxb.scenes_decoded"), 2u);
}

TEST(FxbFormatTest, DecodeSceneOutOfRange) {
  auto reader = FxbReader::FromBuffer(Encode(MakeDataset(1)));
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->DecodeScene(1).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FxbFormatTest, MappedAndBufferedReadsAgree) {
  const Dataset dataset = MakeDataset(2);
  const std::string dir = TempDir();
  const std::string path = dir + "/roundtrip.fxb";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string blob = Encode(dataset);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  auto mapped = FxbReader::Open(path);
  auto buffered = FxbReader::Open(path, /*force_buffered=*/true);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE(buffered.ok()) << buffered.status();
  EXPECT_FALSE(buffered->is_mapped());
  ASSERT_EQ(mapped->scene_count(), buffered->scene_count());
  for (size_t i = 0; i < mapped->scene_count(); ++i) {
    const auto a = mapped->DecodeScene(i);
    const auto b = buffered->DecodeScene(i);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(SceneToString(*a), SceneToString(*b));
  }
  std::filesystem::remove_all(dir);
}

TEST(MappedFileTest, TruncatedWhileMappingIsIoErrorNotSigbus) {
  const Dataset dataset = MakeDataset(2);
  const std::string dir = TempDir();
  const std::string path = dir + "/truncated.fxb";
  const std::string blob = Encode(dataset);
  const auto write_blob = [&] {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  };

  // Shrink the file inside the stat→mmap window, as a concurrent cache
  // rebuild would. Without the post-map size re-check the mapping would
  // extend past EOF and the first read of the tail would SIGBUS.
  write_blob();
  MappedFile::pre_map_hook_for_test = [](const std::string& p) {
    std::filesystem::resize_file(p, 16);
  };
  const auto mapped = MappedFile::Open(path);
  MappedFile::pre_map_hook_for_test = nullptr;
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIoError);

  // The same race through FxbReader::Open surfaces as a Status too.
  write_blob();
  MappedFile::pre_map_hook_for_test = [](const std::string& p) {
    std::filesystem::resize_file(p, 16);
  };
  const auto reader = FxbReader::Open(path);
  MappedFile::pre_map_hook_for_test = nullptr;
  EXPECT_FALSE(reader.ok());

  // Growth in the same window is harmless: the first st_size bytes are
  // still all there, so the open succeeds and decodes normally.
  write_blob();
  MappedFile::pre_map_hook_for_test = [](const std::string& p) {
    std::ofstream app(p, std::ios::binary | std::ios::app);
    app.write("junk", 4);
  };
  const auto grown = FxbReader::Open(path);
  MappedFile::pre_map_hook_for_test = nullptr;
  ASSERT_TRUE(grown.ok()) << grown.status();
  EXPECT_TRUE(grown->DecodeScene(0).ok());

  std::filesystem::remove_all(dir);
}

TEST(FxbFormatTest, OpenMissingFileIsIoError) {
  const auto reader = FxbReader::Open("/nonexistent/path/dataset.fxb");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

TEST(FxbCacheTest, BuildFreshStaleRebuild) {
  const Dataset dataset = MakeDataset(2);
  const std::string dir = TempDir();
  ASSERT_TRUE(SaveDataset(dataset, dir).ok());

  // No cache yet.
  EXPECT_EQ(OpenFreshCache(dir).status().code(), StatusCode::kNotFound);

  auto built = BuildFxbCache(dir);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(*built, dataset.scenes.size());
  EXPECT_TRUE(std::filesystem::exists(FxbCachePath(dir)));

  auto fresh = OpenFreshCache(dir);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(fresh->scene_count(), dataset.scenes.size());

  // Growing a source file invalidates the cache via the fingerprint.
  {
    std::ofstream out(dir + "/scene_0.fixy.json",
                      std::ios::binary | std::ios::app);
    out << "\n";
  }
  const auto stale = OpenFreshCache(dir);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos);

  // Rebuilding restores freshness. (The appended newline is trailing
  // whitespace, which the JSON loader accepts.)
  ASSERT_TRUE(BuildFxbCache(dir).ok());
  EXPECT_TRUE(OpenFreshCache(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(FxbCacheTest, CacheMatchesJsonLoadExactly) {
  const Dataset dataset = MakeDataset(3);
  const std::string dir = TempDir();
  ASSERT_TRUE(SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(BuildFxbCache(dir).ok());
  const auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto reader = OpenFreshCache(dir);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->scene_count(), loaded->scenes.size());
  for (size_t i = 0; i < reader->scene_count(); ++i) {
    const auto scene = reader->DecodeScene(i);
    ASSERT_TRUE(scene.ok()) << scene.status();
    EXPECT_EQ(SceneToString(*scene), SceneToString(loaded->scenes[i]));
  }
  std::filesystem::remove_all(dir);
}

TEST(FxbCacheTest, BuildOnMissingDirectoryFails) {
  EXPECT_FALSE(BuildFxbCache("/nonexistent/fixy/dataset").ok());
}

TEST(FxbCacheTest, SceneSourcesAgree) {
  const Dataset dataset = MakeDataset(2);
  const std::string dir = TempDir();
  ASSERT_TRUE(SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(BuildFxbCache(dir).ok());
  auto reader = OpenFreshCache(dir);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const FxbSceneSource fxb(std::move(*reader));
  auto json_source = DirectorySceneSource::Open(dir);
  ASSERT_TRUE(json_source.ok()) << json_source.status();
  ASSERT_EQ(fxb.scene_count(), json_source->scene_count());
  for (size_t i = 0; i < fxb.scene_count(); ++i) {
    EXPECT_EQ(fxb.scene_name(i), json_source->scene_name(i));
    const auto a = fxb.DecodeScene(i);
    const auto b = json_source->DecodeScene(i);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(SceneToString(*a), SceneToString(*b));
  }
  std::filesystem::remove_all(dir);
}

TEST(FxbMetricsTest, SchemaRecorderZeroTouchesAllKeys) {
  obs::MetricsCollector collector;
  {
    const obs::MetricsScope scope(&collector);
    RecordFxbMetricsSchema();
  }
  const auto snapshot = collector.Snapshot();
  for (const char* key :
       {"io.fxb.bytes_mapped", "io.fxb.cache_hits", "io.fxb.cache_misses",
        "io.fxb.checksum_failures", "io.fxb.scenes_decoded"}) {
    ASSERT_TRUE(snapshot.counters.count(key)) << key;
    EXPECT_EQ(snapshot.counters.at(key), 0u) << key;
  }
  ASSERT_TRUE(snapshot.timers_ms.count("io.fxb.queue_wait"));
}

}  // namespace
}  // namespace fixy::io
