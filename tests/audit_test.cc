// Tests for src/eval/audit: the auditor loop that verifies ranked
// proposals and patches the label set.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/ranker.h"
#include "eval/audit.h"
#include "eval/metrics.h"
#include "sim/generate.h"

namespace fixy::eval {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    profile_ = new sim::SimProfile(sim::LyftLikeProfile());
    fixy_ = new Fixy();
    const auto training = sim::GenerateDataset(*profile_, "train", 4, 321);
    ASSERT_TRUE(fixy_->Learn(training.dataset).ok());
  }
  static void TearDownTestSuite() {
    delete fixy_;
    delete profile_;
    fixy_ = nullptr;
    profile_ = nullptr;
  }

  static sim::SimProfile* profile_;
  static Fixy* fixy_;
};

sim::SimProfile* AuditTest::profile_ = nullptr;
Fixy* AuditTest::fixy_ = nullptr;

TEST_F(AuditTest, VerifiedProposalsPatchTheScene) {
  const auto generated = sim::GenerateScene(*profile_, "audit_scene", 11);
  const auto ranked = fixy_->FindMissingTracks(generated.scene).value();
  const auto result =
      AuditScene(generated.scene, ranked, generated.ledger);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->verified, result->reviewed);
  EXPECT_LE(result->errors_fixed, result->verified);
  // Every added observation is an auditor label.
  EXPECT_EQ(result->corrected_scene.CountBySource(ObservationSource::kAuditor),
            result->observations_added);
  // Originals are untouched.
  EXPECT_EQ(result->corrected_scene.CountBySource(ObservationSource::kHuman),
            generated.scene.CountBySource(ObservationSource::kHuman));
  EXPECT_EQ(result->corrected_scene.CountBySource(ObservationSource::kModel),
            generated.scene.CountBySource(ObservationSource::kModel));
  EXPECT_TRUE(result->corrected_scene.Validate().ok());
}

TEST_F(AuditTest, YieldMatchesPrecisionAtK) {
  const auto generated = sim::GenerateScene(*profile_, "audit_scene", 12);
  const auto ranked = fixy_->FindMissingTracks(generated.scene).value();
  const auto claimable = ClaimableErrors(
      generated.ledger, ProposalKind::kMissingTrack, generated.scene.name());
  const auto result = AuditScene(generated.scene, ranked, generated.ledger);
  ASSERT_TRUE(result.ok());
  const PrecisionResult precision = PrecisionAtK(ranked, claimable, 10);
  EXPECT_EQ(result->verified, precision.hits);
  EXPECT_DOUBLE_EQ(result->Yield(), precision.precision);
}

TEST_F(AuditTest, FixedErrorsAreFoundNoMoreAfterCorrection) {
  // After patching, the corrected scene's auditor labels make the fixed
  // tracks human/auditor-covered, so they stop being missing-track
  // candidates.
  const auto generated = sim::GenerateScene(*profile_, "audit_scene", 13);
  const auto ranked = fixy_->FindMissingTracks(generated.scene).value();
  AuditOptions options;
  options.top_k = 10;
  const auto result =
      AuditScene(generated.scene, ranked, generated.ledger, options);
  ASSERT_TRUE(result.ok());
  if (result->errors_fixed == 0) GTEST_SKIP() << "no errors fixed";

  const auto ranked_after =
      fixy_->FindMissingTracks(result->corrected_scene).value();
  // Note: auditor labels count as non-model sources, so fixed tracks are
  // excluded from the candidate pool.
  size_t still_flagged = 0;
  const auto claimable = ClaimableErrors(
      generated.ledger, ProposalKind::kMissingTrack, generated.scene.name());
  for (const ErrorProposal& p : TopK(ranked_after, options.top_k)) {
    for (const sim::GtError* error : claimable) {
      if (ProposalMatchesError(p, *error)) {
        ++still_flagged;
        break;
      }
    }
  }
  const PrecisionResult before =
      PrecisionAtK(ranked, claimable, options.top_k);
  EXPECT_LT(still_flagged, before.hits);
}

TEST_F(AuditTest, EmptyProposalListIsANoOp) {
  const auto generated = sim::GenerateScene(*profile_, "audit_scene", 14);
  const auto result = AuditScene(generated.scene, {}, generated.ledger);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reviewed, 0u);
  EXPECT_EQ(result->observations_added, 0u);
  EXPECT_DOUBLE_EQ(result->Yield(), 0.0);
  EXPECT_EQ(result->corrected_scene.TotalObservations(),
            generated.scene.TotalObservations());
}

TEST_F(AuditTest, RejectsInvalidScene) {
  Scene broken("broken", 10.0);
  Frame frame;
  frame.index = 3;  // wrong index
  broken.AddFrame(std::move(frame));
  EXPECT_FALSE(AuditScene(broken, {}, sim::GtLedger{}).ok());
}

TEST_F(AuditTest, TopKLimitsReview) {
  const auto generated = sim::GenerateScene(*profile_, "audit_scene", 15);
  const auto ranked = fixy_->FindMissingTracks(generated.scene).value();
  if (ranked.size() < 3) GTEST_SKIP() << "not enough proposals";
  AuditOptions options;
  options.top_k = 2;
  const auto result =
      AuditScene(generated.scene, ranked, generated.ledger, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reviewed, 2u);
}

}  // namespace
}  // namespace fixy::eval
