// Tests for src/dsl: bundler, track builder (association within and across
// frames), AOFs, and feature distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "dsl/aof.h"
#include "dsl/bundler.h"
#include "dsl/feature.h"
#include "dsl/feature_distribution.h"
#include "dsl/track_builder.h"
#include "stats/gaussian.h"
#include "stats/lambda_distribution.h"

namespace fixy {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source, double x,
                    double y, int frame, ObjectClass cls = ObjectClass::kCar,
                    double confidence = 1.0) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = cls;
  obs.box = geom::Box3d({x, y, 0.85}, 4.5, 1.9, 1.7, 0.0);
  obs.frame_index = frame;
  obs.timestamp = frame * 0.1;
  obs.confidence = confidence;
  return obs;
}

// -------------------------------------------------------------- Bundler

TEST(IouBundlerTest, AssociatesOverlappingBoxes) {
  const IouBundler bundler(0.5);
  const Observation a = MakeObs(1, ObservationSource::kHuman, 10, 0, 0);
  const Observation b = MakeObs(2, ObservationSource::kModel, 10.1, 0.05, 0);
  EXPECT_TRUE(bundler.IsAssociated(a, b));
}

TEST(IouBundlerTest, RejectsDistantBoxes) {
  const IouBundler bundler(0.5);
  const Observation a = MakeObs(1, ObservationSource::kHuman, 10, 0, 0);
  const Observation b = MakeObs(2, ObservationSource::kModel, 20, 0, 0);
  EXPECT_FALSE(bundler.IsAssociated(a, b));
}

TEST(IouBundlerTest, ThresholdIsRespected) {
  // Two car boxes offset by half a length: IoU = (2.25*1.9)/(2*4.5*1.9 -
  // 2.25*1.9) = 1/3.
  const Observation a = MakeObs(1, ObservationSource::kHuman, 10, 0, 0);
  const Observation b = MakeObs(2, ObservationSource::kModel, 12.25, 0, 0);
  EXPECT_TRUE(IouBundler(0.3).IsAssociated(a, b));
  EXPECT_FALSE(IouBundler(0.35).IsAssociated(a, b));
}

// --------------------------------------------------------- TrackBuilder

Scene SceneWithTwoSourceTrack(int frames, double step = 0.8) {
  // One object labeled by human and model moving along +x.
  Scene scene("two_source", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < frames; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.ego_position = {0, 0};
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kHuman, 10 + step * f, 0, f));
    frame.observations.push_back(MakeObs(id++, ObservationSource::kModel,
                                         10.08 + step * f, 0.04, f,
                                         ObjectClass::kCar, 0.9));
    scene.AddFrame(std::move(frame));
  }
  return scene;
}

TEST(TrackBuilderTest, MergesSourcesIntoOneTrack) {
  const TrackBuilder builder;
  const auto tracks = builder.Build(SceneWithTwoSourceTrack(5));
  ASSERT_TRUE(tracks.ok()) << tracks.status();
  ASSERT_EQ(tracks->tracks.size(), 1u);
  const Track& track = tracks->tracks[0];
  EXPECT_EQ(track.size(), 5u);
  EXPECT_EQ(track.TotalObservations(), 10u);
  for (const ObservationBundle& bundle : track.bundles()) {
    EXPECT_EQ(bundle.observations.size(), 2u);
    EXPECT_TRUE(bundle.HasSource(ObservationSource::kHuman));
    EXPECT_TRUE(bundle.HasSource(ObservationSource::kModel));
  }
}

TEST(TrackBuilderTest, SeparateObjectsGetSeparateTracks) {
  Scene scene("two_objects", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 4; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kModel, 10 + 0.5 * f, 0, f));
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kModel, 40 - 0.5 * f, 8, f));
    scene.AddFrame(std::move(frame));
  }
  const auto tracks = TrackBuilder().Build(scene);
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->tracks.size(), 2u);
  for (const Track& track : tracks->tracks) {
    EXPECT_EQ(track.size(), 4u);
  }
}

TEST(TrackBuilderTest, GapWithinAllowanceStaysOneTrack) {
  Scene scene("gap", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 6; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    if (f != 2) {  // one-frame gap
      frame.observations.push_back(
          MakeObs(id++, ObservationSource::kModel, 10 + 0.3 * f, 0, f));
    }
    scene.AddFrame(std::move(frame));
  }
  TrackBuilderOptions options;
  options.max_gap_frames = 2;
  const auto tracks = TrackBuilder(options).Build(scene);
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->tracks.size(), 1u);
  EXPECT_EQ(tracks->tracks[0].size(), 5u);
}

TEST(TrackBuilderTest, GapBeyondAllowanceSplitsTrack) {
  Scene scene("long_gap", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 10; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    if (f < 3 || f > 7) {  // four-frame gap
      frame.observations.push_back(
          MakeObs(id++, ObservationSource::kModel, 10.0, 0, f));
    }
    scene.AddFrame(std::move(frame));
  }
  TrackBuilderOptions options;
  options.max_gap_frames = 2;
  const auto tracks = TrackBuilder(options).Build(scene);
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->tracks.size(), 2u);
}

TEST(TrackBuilderTest, FastObjectLinksAcrossFramesAtLooseThreshold) {
  // 0.8 m/frame steps leave BEV IoU ~0.65 between frames for a car box.
  const auto tracks = TrackBuilder().Build(SceneWithTwoSourceTrack(8, 0.8));
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->tracks.size(), 1u);
}

TEST(TrackBuilderTest, RejectsInvalidScene) {
  Scene scene = SceneWithTwoSourceTrack(3);
  scene.frames()[0].observations[0].id =
      scene.frames()[1].observations[0].id;
  EXPECT_FALSE(TrackBuilder().Build(scene).ok());
}

TEST(TrackBuilderTest, EmptySceneYieldsNoTracks) {
  const Scene scene("empty", 10.0);
  const auto tracks = TrackBuilder().Build(scene);
  ASSERT_TRUE(tracks.ok());
  EXPECT_TRUE(tracks->tracks.empty());
}

TEST(TrackBuilderTest, DeterministicOutput) {
  const Scene scene = SceneWithTwoSourceTrack(6);
  const auto a = TrackBuilder().Build(scene);
  const auto b = TrackBuilder().Build(scene);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->tracks.size(), b->tracks.size());
  for (size_t t = 0; t < a->tracks.size(); ++t) {
    EXPECT_EQ(a->tracks[t].id(), b->tracks[t].id());
    EXPECT_EQ(a->tracks[t].size(), b->tracks[t].size());
  }
}

TEST(TrackBuilderTest, BundlesCarryEgoPose) {
  Scene scene = SceneWithTwoSourceTrack(3);
  for (auto& frame : scene.frames()) {
    frame.ego_position = {frame.index * 2.0, 1.0};
  }
  const auto tracks = TrackBuilder().Build(scene);
  ASSERT_TRUE(tracks.ok());
  const Track& track = tracks->tracks[0];
  EXPECT_DOUBLE_EQ(track.bundles()[1].ego_position.x, 2.0);
  EXPECT_DOUBLE_EQ(track.bundles()[2].ego_position.y, 1.0);
}

// ------------------------------------------------------------------ AOF

TEST(AofTest, IdentityAndInvert) {
  EXPECT_DOUBLE_EQ(IdentityAof().Apply(0.3), 0.3);
  EXPECT_DOUBLE_EQ(InvertAof().Apply(0.3), 0.7);
  EXPECT_DOUBLE_EQ(InvertAof().Apply(1.0), 0.0);
}

TEST(AofTest, LambdaAof) {
  const LambdaAof aof("square", [](double p) { return p * p; });
  EXPECT_DOUBLE_EQ(aof.Apply(0.5), 0.25);
  EXPECT_EQ(aof.name(), "square");
}

TEST(AofTest, Factories) {
  EXPECT_EQ(MakeIdentityAof()->name(), "identity");
  EXPECT_EQ(MakeInvertAof()->name(), "invert");
}

// -------------------------------------------------- FeatureDistribution

// A feature returning box volume (class-conditional variant togglable).
class TestVolumeFeature final : public ObservationFeature {
 public:
  explicit TestVolumeFeature(bool per_class) : per_class_(per_class) {}
  std::string name() const override { return "test_volume"; }
  bool class_conditional() const override { return per_class_; }
  std::optional<double> Compute(const Observation& obs,
                                const FeatureContext&) const override {
    return obs.box.Volume();
  }

 private:
  bool per_class_;
};

stats::DistributionPtr GaussianAt(double mean, double sd) {
  return std::make_shared<stats::Gaussian>(
      stats::Gaussian::Create(mean, sd).value());
}

TEST(FeatureDistributionTest, GlobalDistributionScoresObservation) {
  const double car_volume = 4.5 * 1.9 * 1.7;
  FeatureDistribution fd(std::make_shared<TestVolumeFeature>(false),
                         GaussianAt(car_volume, 1.0));
  const Observation obs = MakeObs(1, ObservationSource::kModel, 0, 0, 0);
  const FeatureContext ctx{{0, 0}, 10.0};
  const auto score = fd.ScoreObservation(obs, ctx);
  ASSERT_TRUE(score.has_value());
  EXPECT_NEAR(*score, 1.0, 1e-9);  // at the mode
}

TEST(FeatureDistributionTest, ClassConditionalUsesMatchingClass) {
  std::map<ObjectClass, stats::DistributionPtr> per_class;
  const double car_volume = 4.5 * 1.9 * 1.7;
  per_class[ObjectClass::kCar] = GaussianAt(car_volume, 1.0);
  per_class[ObjectClass::kTruck] = GaussianAt(70.0, 5.0);
  FeatureDistribution fd(std::make_shared<TestVolumeFeature>(true),
                         std::move(per_class));
  const FeatureContext ctx{{0, 0}, 10.0};
  const Observation car = MakeObs(1, ObservationSource::kModel, 0, 0, 0);
  const auto car_score = fd.ScoreObservation(car, ctx);
  ASSERT_TRUE(car_score.has_value());
  EXPECT_NEAR(*car_score, 1.0, 1e-9);
  // The same box claimed as a truck is wildly unlikely.
  Observation fake_truck = car;
  fake_truck.object_class = ObjectClass::kTruck;
  const auto truck_score = fd.ScoreObservation(fake_truck, ctx);
  ASSERT_TRUE(truck_score.has_value());
  EXPECT_LT(*truck_score, 0.01);
}

TEST(FeatureDistributionTest, UnseenClassYieldsNoFactor) {
  std::map<ObjectClass, stats::DistributionPtr> per_class;
  per_class[ObjectClass::kCar] = GaussianAt(14.0, 1.0);
  FeatureDistribution fd(std::make_shared<TestVolumeFeature>(true),
                         std::move(per_class));
  const Observation ped = MakeObs(1, ObservationSource::kModel, 0, 0, 0,
                                  ObjectClass::kPedestrian);
  const FeatureContext ctx{{0, 0}, 10.0};
  EXPECT_FALSE(fd.ScoreObservation(ped, ctx).has_value());
}

TEST(FeatureDistributionTest, AofTransformsScore) {
  const double car_volume = 4.5 * 1.9 * 1.7;
  FeatureDistribution fd(std::make_shared<TestVolumeFeature>(false),
                         GaussianAt(car_volume, 1.0), MakeInvertAof());
  const Observation obs = MakeObs(1, ObservationSource::kModel, 0, 0, 0);
  const FeatureContext ctx{{0, 0}, 10.0};
  const auto score = fd.ScoreObservation(obs, ctx);
  ASSERT_TRUE(score.has_value());
  // Mode likelihood 1.0 inverted becomes the floor, not exactly 0.
  EXPECT_NEAR(*score, stats::kScoreFloor, 1e-12);
}

TEST(FeatureDistributionTest, WithAofReplacesTransform) {
  const double car_volume = 4.5 * 1.9 * 1.7;
  const FeatureDistribution base(std::make_shared<TestVolumeFeature>(false),
                                 GaussianAt(car_volume, 1.0));
  const FeatureDistribution inverted = base.WithAof(MakeInvertAof());
  const Observation obs = MakeObs(1, ObservationSource::kModel, 0, 0, 0);
  const FeatureContext ctx{{0, 0}, 10.0};
  EXPECT_NEAR(*base.ScoreObservation(obs, ctx), 1.0, 1e-9);
  EXPECT_NEAR(*inverted.ScoreObservation(obs, ctx), stats::kScoreFloor,
              1e-12);
}

TEST(FeatureDistributionTest, ScoreClampedToUnitInterval) {
  // A hostile AOF returning values outside [0, 1] is clamped.
  FeatureDistribution fd(
      std::make_shared<TestVolumeFeature>(false), GaussianAt(14.0, 1.0),
      std::make_shared<LambdaAof>("wild", [](double) { return 42.0; }));
  const Observation obs = MakeObs(1, ObservationSource::kModel, 0, 0, 0);
  const FeatureContext ctx{{0, 0}, 10.0};
  EXPECT_DOUBLE_EQ(*fd.ScoreObservation(obs, ctx), 1.0);
}

TEST(FeatureDistributionTest, RawLikelihoodExposed) {
  FeatureDistribution fd(std::make_shared<TestVolumeFeature>(false),
                         GaussianAt(10.0, 2.0));
  const auto at_mode = fd.RawLikelihood(10.0, std::nullopt);
  ASSERT_TRUE(at_mode.has_value());
  EXPECT_NEAR(*at_mode, 1.0, 1e-12);
  const auto off_mode = fd.RawLikelihood(12.0, std::nullopt);
  ASSERT_TRUE(off_mode.has_value());
  EXPECT_NEAR(*off_mode, std::exp(-0.5), 1e-12);
}

}  // namespace
}  // namespace fixy
