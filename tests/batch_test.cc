// Tests for the dataset-scale batch ranking path: the RankDataset facade,
// parallel-vs-serial determinism, the cached per-application specs, and
// the ClosestApproachBundle empty-bundle regression.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/applications.h"
#include "data/scene_source.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "sim/generate.h"

namespace fixy {
namespace {

// Field-exact equality: the determinism contract is byte-identical output,
// so scores compare with ==, not a tolerance.
void ExpectProposalsIdentical(const std::vector<ErrorProposal>& a,
                              const std::vector<ErrorProposal>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scene_name, b[i].scene_name) << "proposal " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "proposal " << i;
    EXPECT_EQ(a[i].track_id, b[i].track_id) << "proposal " << i;
    EXPECT_EQ(a[i].frame_index, b[i].frame_index) << "proposal " << i;
    EXPECT_EQ(a[i].object_class, b[i].object_class) << "proposal " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "proposal " << i;
    EXPECT_EQ(a[i].model_confidence, b[i].model_confidence)
        << "proposal " << i;
    EXPECT_EQ(a[i].first_frame, b[i].first_frame) << "proposal " << i;
    EXPECT_EQ(a[i].last_frame, b[i].last_frame) << "proposal " << i;
  }
}

class BatchRankTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    profile_ = new sim::SimProfile(sim::LyftLikeProfile());
    dataset_ = new sim::GeneratedDataset(
        sim::GenerateDataset(*profile_, "batch", 16, 77));
    fixy_ = new Fixy();
    const sim::GeneratedDataset training =
        sim::GenerateDataset(*profile_, "batch_train", 4, 78);
    ASSERT_TRUE(fixy_->Learn(training.dataset).ok());
  }

  static void TearDownTestSuite() {
    delete fixy_;
    delete dataset_;
    delete profile_;
    fixy_ = nullptr;
    dataset_ = nullptr;
    profile_ = nullptr;
  }

  static sim::SimProfile* profile_;
  static sim::GeneratedDataset* dataset_;
  static Fixy* fixy_;
};

sim::SimProfile* BatchRankTest::profile_ = nullptr;
sim::GeneratedDataset* BatchRankTest::dataset_ = nullptr;
Fixy* BatchRankTest::fixy_ = nullptr;

// Makes scene `index` of a copy of the fixture dataset fail validation
// (and thus RankScene) deterministically: its first frame's index no
// longer matches its position.
Dataset PoisonScene(const Dataset& dataset, size_t index) {
  Dataset poisoned = dataset;
  poisoned.scenes[index].frames().front().index = 9999;
  return poisoned;
}

TEST_F(BatchRankTest, RequiresLearn) {
  const Fixy unlearned;
  const auto result = unlearned.RankDataset(dataset_->dataset,
                                            Application::kMissingTracks);
  EXPECT_FALSE(result.ok());
}

TEST_F(BatchRankTest, EmptyDatasetYieldsEmptyResult) {
  const Dataset empty;
  const auto result =
      fixy_->RankDataset(empty, Application::kMissingTracks);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outcomes.empty());
  EXPECT_TRUE(result->all_ok());
  EXPECT_EQ(result->scenes_ok, 0u);
  EXPECT_EQ(result->scenes_failed, 0u);
}

TEST_F(BatchRankTest, EmptyDatasetOkEvenWithFailFast) {
  const Dataset empty;
  BatchOptions options;
  options.fail_fast = true;
  const auto result =
      fixy_->RankDataset(empty, Application::kModelErrors, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outcomes.empty());
}

// Scenes with frames but no observations (and scenes with no frames at
// all) are valid inputs: they rank to ok outcomes with zero proposals
// rather than failing the batch.
TEST_F(BatchRankTest, EmptyFrameScenesRankToEmptyProposals) {
  Dataset dataset;
  dataset.name = "empties";
  Scene no_frames("no_frames", 10.0);
  dataset.scenes.push_back(no_frames);
  Scene empty_frames("empty_frames", 10.0);
  for (int i = 0; i < 3; ++i) {
    Frame frame;
    frame.index = i;
    frame.timestamp = 0.1 * i;
    empty_frames.AddFrame(frame);
  }
  dataset.scenes.push_back(empty_frames);
  for (const Application app :
       {Application::kMissingTracks, Application::kMissingObservations,
        Application::kModelErrors}) {
    const auto result = fixy_->RankDataset(dataset, app);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->outcomes.size(), 2u);
    EXPECT_TRUE(result->all_ok());
    EXPECT_EQ(result->scenes_ok, 2u);
    for (const SceneOutcome& outcome : result->outcomes) {
      EXPECT_TRUE(outcome.ok()) << outcome.status;
      EXPECT_TRUE(outcome.proposals.empty());
    }
  }
}

TEST_F(BatchRankTest, ReturnsOneRankedListPerSceneInOrder) {
  const auto result = fixy_->RankDataset(dataset_->dataset,
                                         Application::kMissingTracks,
                                         BatchOptions{4});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcomes.size(), dataset_->dataset.scenes.size());
  EXPECT_EQ(result->scenes_ok, dataset_->dataset.scenes.size());
  EXPECT_TRUE(result->all_ok());
  for (size_t s = 0; s < result->outcomes.size(); ++s) {
    const SceneOutcome& outcome = result->outcomes[s];
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.scene_name, dataset_->dataset.scenes[s].name());
    for (const ErrorProposal& p : outcome.proposals) {
      EXPECT_EQ(p.scene_name, dataset_->dataset.scenes[s].name());
    }
    // Ranked most-suspicious-first.
    for (size_t i = 1; i < outcome.proposals.size(); ++i) {
      EXPECT_GE(outcome.proposals[i - 1].score, outcome.proposals[i].score);
    }
  }
}

// The tentpole determinism contract: on a 16-scene sim dataset, 1 worker
// and N workers must produce identical ranked proposals for every
// application.
TEST_F(BatchRankTest, ParallelOutputIdenticalToSerial) {
  for (const Application app :
       {Application::kMissingTracks, Application::kMissingObservations,
        Application::kModelErrors}) {
    const auto serial =
        fixy_->RankDataset(dataset_->dataset, app, BatchOptions{1});
    ASSERT_TRUE(serial.ok());
    for (const int threads : {2, 8}) {
      const auto parallel =
          fixy_->RankDataset(dataset_->dataset, app, BatchOptions{threads});
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(serial->outcomes.size(), parallel->outcomes.size());
      for (size_t s = 0; s < serial->outcomes.size(); ++s) {
        ExpectProposalsIdentical(serial->outcomes[s].proposals,
                                 parallel->outcomes[s].proposals);
      }
    }
  }
}

// The batch path must agree with the single-scene facade calls (which use
// the same cached specs).
TEST_F(BatchRankTest, BatchAgreesWithSingleSceneCalls) {
  const auto batch = fixy_->RankDataset(dataset_->dataset,
                                        Application::kMissingTracks,
                                        BatchOptions{4});
  ASSERT_TRUE(batch.ok());
  for (size_t s = 0; s < dataset_->dataset.scenes.size(); ++s) {
    const auto single =
        fixy_->FindMissingTracks(dataset_->dataset.scenes[s]);
    ASSERT_TRUE(single.ok());
    ExpectProposalsIdentical(*single, batch->outcomes[s].proposals);
  }
}

// The partial-failure contract: one poisoned scene is quarantined with its
// error, and every healthy scene's proposals are byte-identical to the
// all-clean run — at every thread count.
TEST_F(BatchRankTest, PoisonedSceneQuarantinedOthersUnaffected) {
  constexpr size_t kPoisoned = 5;
  const Dataset poisoned = PoisonScene(dataset_->dataset, kPoisoned);
  const auto clean = fixy_->RankDataset(dataset_->dataset,
                                        Application::kMissingTracks,
                                        BatchOptions{1});
  ASSERT_TRUE(clean.ok());
  for (int threads = 1; threads <= 8; ++threads) {
    const auto result = fixy_->RankDataset(
        poisoned, Application::kMissingTracks, BatchOptions{threads});
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    ASSERT_EQ(result->outcomes.size(), dataset_->dataset.scenes.size());
    EXPECT_EQ(result->scenes_ok, dataset_->dataset.scenes.size() - 1);
    EXPECT_EQ(result->scenes_failed, 1u);
    EXPECT_EQ(result->scenes_quarantined, 1u);
    EXPECT_FALSE(result->all_ok());
    for (size_t s = 0; s < result->outcomes.size(); ++s) {
      if (s == kPoisoned) {
        EXPECT_FALSE(result->outcomes[s].ok());
        EXPECT_TRUE(result->outcomes[s].proposals.empty());
        continue;
      }
      EXPECT_TRUE(result->outcomes[s].ok()) << "threads=" << threads;
      ExpectProposalsIdentical(clean->outcomes[s].proposals,
                               result->outcomes[s].proposals);
    }
  }
}

// With fail_fast the call fails with the *first* failing scene's error in
// dataset order, no matter which worker hit its failure first.
TEST_F(BatchRankTest, FailFastReturnsFirstFailureInDatasetOrder) {
  Dataset poisoned = PoisonScene(dataset_->dataset, 3);
  poisoned.scenes[10].frames().front().index = 9999;
  BatchOptions options;
  options.fail_fast = true;
  for (const int threads : {1, 2, 8}) {
    options.num_threads = threads;
    const auto result = fixy_->RankDataset(
        poisoned, Application::kMissingTracks, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_NE(result.status().message().find(
                  poisoned.scenes[3].name()),
              std::string::npos)
        << result.status();
  }
}

// Without fail_fast the same two-failure batch succeeds with both scenes
// quarantined.
TEST_F(BatchRankTest, TwoPoisonedScenesBothQuarantined) {
  Dataset poisoned = PoisonScene(dataset_->dataset, 3);
  poisoned.scenes[10].frames().front().index = 9999;
  const auto result = fixy_->RankDataset(
      poisoned, Application::kMissingTracks, BatchOptions{4});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scenes_failed, 2u);
  EXPECT_EQ(result->scenes_quarantined, 2u);
  EXPECT_EQ(result->scenes_ok, dataset_->dataset.scenes.size() - 2);
  EXPECT_FALSE(result->outcomes[3].ok());
  EXPECT_FALSE(result->outcomes[10].ok());
}

// The cached-spec fast path must not change results relative to building
// the spec from the learned distributions per call (the pattern the
// ablation benches use).
TEST_F(BatchRankTest, CachedSpecMatchesPerCallSpecConstruction) {
  const Scene& scene = dataset_->dataset.scenes.front();
  const auto cached = fixy_->FindMissingTracks(scene);
  ASSERT_TRUE(cached.ok());
  const auto rebuilt = FindMissingTracks(
      scene,
      BuildMissingTracksSpec(fixy_->learned_features(),
                             fixy_->options().application),
      fixy_->options().application);
  ASSERT_TRUE(rebuilt.ok());
  ExpectProposalsIdentical(*cached, *rebuilt);
}

// Every metric value in a snapshot must be finite, timers and gauges
// non-negative (counters are unsigned by construction).
void ExpectMetricsWellFormed(const obs::PipelineMetrics& metrics) {
  for (const auto& [name, value] : metrics.timers_ms) {
    EXPECT_TRUE(std::isfinite(value)) << name;
    EXPECT_GE(value, 0.0) << name;
  }
  for (const auto& [name, value] : metrics.gauges) {
    EXPECT_TRUE(std::isfinite(value)) << name;
  }
}

// The observability determinism contract: counters are exact event counts,
// so the full counter map must be *identical* — key set and values — at
// every thread count. Timers may vary in value but never in key set.
TEST_F(BatchRankTest, MetricsCountersIdenticalAcrossThreadCounts) {
  BatchOptions options;
  options.collect_metrics = true;
  options.num_threads = 1;
  const auto baseline = fixy_->RankDataset(
      dataset_->dataset, Application::kMissingTracks, options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->metrics.counters.empty());
  EXPECT_GT(baseline->metrics.counters.at("batch.scenes"), 0u);
  EXPECT_GT(baseline->metrics.counters.at("stats.kde_evals"), 0u);
  EXPECT_GT(baseline->metrics.counters.at("rank.missing-tracks.proposals"),
            0u);
  ExpectMetricsWellFormed(baseline->metrics);

  for (int threads = 2; threads <= 8; ++threads) {
    options.num_threads = threads;
    const auto result = fixy_->RankDataset(
        dataset_->dataset, Application::kMissingTracks, options);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result->metrics.counters, baseline->metrics.counters)
        << "threads=" << threads;
    ExpectMetricsWellFormed(result->metrics);
    // Same stages ran, so the same timer keys must exist (values differ).
    ASSERT_EQ(result->metrics.timers_ms.size(),
              baseline->metrics.timers_ms.size());
    auto it = baseline->metrics.timers_ms.begin();
    for (const auto& [name, value] : result->metrics.timers_ms) {
      EXPECT_EQ(name, it->first);
      ++it;
    }
  }
}

// Quarantine counters on the snapshot mirror the report's summary fields.
TEST_F(BatchRankTest, MetricsQuarantineCountersMatchReport) {
  const Dataset poisoned = PoisonScene(dataset_->dataset, 5);
  BatchOptions options;
  options.collect_metrics = true;
  options.num_threads = 4;
  const auto result = fixy_->RankDataset(
      poisoned, Application::kMissingTracks, options);
  ASSERT_TRUE(result.ok());
  const auto& counters = result->metrics.counters;
  EXPECT_EQ(counters.at("batch.scenes"), poisoned.scenes.size());
  EXPECT_EQ(counters.at("batch.scenes_ok"), result->scenes_ok);
  EXPECT_EQ(counters.at("batch.scenes_failed"), result->scenes_failed);
  EXPECT_EQ(counters.at("batch.scenes_quarantined"),
            result->scenes_quarantined);
  EXPECT_EQ(counters.at("span.scene.calls"), poisoned.scenes.size());
}

// With collect_metrics off (the default) the snapshot stays empty and
// nothing leaks to an ambient caller-side collector — at any thread count,
// so a caller cannot observe a thread-count-dependent difference.
TEST_F(BatchRankTest, MetricsEmptyWhenDisabled) {
  for (const int threads : {1, 4}) {
    obs::MetricsCollector ambient;
    const obs::MetricsScope scope(&ambient);
    const auto result = fixy_->RankDataset(
        dataset_->dataset, Application::kMissingTracks, BatchOptions{threads});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->metrics.empty());
    EXPECT_TRUE(ambient.Snapshot().empty()) << "threads=" << threads;
  }
}

// Learning under an ambient collector records per-feature sample counts
// and the fit/rebuild stage timers.
TEST_F(BatchRankTest, LearnRecordsSampleCountsAndTimers) {
  obs::MetricsCollector ambient;
  const obs::MetricsScope scope(&ambient);
  Fixy fixy;
  const sim::GeneratedDataset training =
      sim::GenerateDataset(*profile_, "metrics_train", 2, 79);
  ASSERT_TRUE(fixy.Learn(training.dataset).ok());
  const obs::PipelineMetrics snapshot = ambient.Snapshot();
  EXPECT_GT(snapshot.counters.at("learn.samples.volume"), 0u);
  EXPECT_GT(snapshot.counters.at("learn.samples.velocity"), 0u);
  EXPECT_EQ(snapshot.timers_ms.count("learn.fit"), 1u);
  EXPECT_EQ(snapshot.timers_ms.count("learn.total"), 1u);
  EXPECT_EQ(snapshot.timers_ms.count("learn.rebuild_specs"), 1u);
  ExpectMetricsWellFormed(snapshot);
}

// A SceneSource that fails decode for a chosen set of indices — the
// streaming analogue of PoisonScene, exercising the decode-failure →
// quarantine path without a real corrupt file.
class FailingSource : public SceneSource {
 public:
  FailingSource(const Dataset& dataset, std::set<size_t> failing)
      : inner_(dataset), failing_(std::move(failing)) {}

  size_t scene_count() const override { return inner_.scene_count(); }
  std::string scene_name(size_t index) const override {
    return inner_.scene_name(index);
  }
  Result<Scene> DecodeScene(size_t index) const override {
    if (failing_.count(index)) {
      return Status::FailedPrecondition("injected decode failure");
    }
    return inner_.DecodeScene(index);
  }

 private:
  DatasetSceneSource inner_;
  std::set<size_t> failing_;
};

// The streaming determinism contract: RankDatasetStreaming must produce a
// report byte-identical to RankDataset at every (rank threads, decode
// threads, queue capacity) combination.
TEST_F(BatchRankTest, StreamingMatchesNonStreaming) {
  const DatasetSceneSource source(dataset_->dataset);
  const auto reference = fixy_->RankDataset(
      dataset_->dataset, Application::kMissingTracks, BatchOptions{1});
  ASSERT_TRUE(reference.ok());
  for (int threads = 1; threads <= 8; ++threads) {
    for (const int decode_threads : {1, 2}) {
      BatchOptions batch;
      batch.num_threads = threads;
      StreamOptions stream;
      stream.decode_threads = decode_threads;
      const auto streamed = fixy_->RankDatasetStreaming(
          source, Application::kMissingTracks, batch, stream);
      ASSERT_TRUE(streamed.ok())
          << "threads=" << threads << " decode=" << decode_threads;
      ASSERT_EQ(streamed->outcomes.size(), reference->outcomes.size());
      EXPECT_EQ(streamed->scenes_ok, reference->scenes_ok);
      for (size_t s = 0; s < reference->outcomes.size(); ++s) {
        EXPECT_EQ(streamed->outcomes[s].scene_name,
                  reference->outcomes[s].scene_name);
        ExpectProposalsIdentical(reference->outcomes[s].proposals,
                                 streamed->outcomes[s].proposals);
      }
    }
  }
}

// A SceneSource whose decode of one scene hangs until the test opens a
// gate — a stand-in for a wedged loader (dead NFS mount, kernel bug,
// deadlocked decoder).
class HangingSource : public SceneSource {
 public:
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<bool> exited{false};

    void Open() {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        open = true;
      }
      cv.notify_all();
    }
  };

  HangingSource(const Dataset& dataset, size_t hang_index,
                std::shared_ptr<Gate> gate)
      : inner_(dataset), hang_index_(hang_index), gate_(std::move(gate)) {}

  size_t scene_count() const override { return inner_.scene_count(); }
  std::string scene_name(size_t index) const override {
    return inner_.scene_name(index);
  }
  Result<Scene> DecodeScene(size_t index) const override {
    if (index == hang_index_) {
      const std::shared_ptr<Gate> gate = gate_;  // keep alive past `this`
      std::unique_lock<std::mutex> lock(gate->mutex);
      gate->cv.wait(lock, [&] { return gate->open; });
      lock.unlock();
      gate->exited.store(true);
      return Status::IoError("woke from injected hang");
    }
    return inner_.DecodeScene(index);
  }

 private:
  DatasetSceneSource inner_;
  size_t hang_index_;
  std::shared_ptr<Gate> gate_;
};

// A wedged decode worker must surface as a Status after the stall
// deadline instead of hanging the call forever. (Without
// stall_timeout_ms this test would deadlock.)
TEST_F(BatchRankTest, StreamingStallSurfacesAsStatus) {
  auto gate = std::make_shared<HangingSource::Gate>();
  const HangingSource source(dataset_->dataset, 0, gate);
  BatchOptions batch;
  batch.num_threads = 2;
  StreamOptions stream;
  stream.decode_threads = 1;  // the hung scene blocks the whole stream
  stream.stall_timeout_ms = 100;
  const auto result = fixy_->RankDatasetStreaming(
      source, Application::kMissingTracks, batch, stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("stalled"), std::string::npos);

  // Unwedge the abandoned decode thread and wait for it to leave the
  // source before the source goes out of scope; its pool thread stays
  // parked (intentionally leaked), holding only heap state.
  gate->Open();
  while (!gate->exited.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

// A tiny queue forces back-pressure (decoders block on Push); the output
// must not change.
TEST_F(BatchRankTest, StreamingUnaffectedByQueueCapacity) {
  const DatasetSceneSource source(dataset_->dataset);
  const auto reference = fixy_->RankDataset(
      dataset_->dataset, Application::kMissingTracks, BatchOptions{1});
  ASSERT_TRUE(reference.ok());
  BatchOptions batch;
  batch.num_threads = 4;
  StreamOptions stream;
  stream.decode_threads = 4;
  for (const size_t capacity : {size_t{1}, size_t{2}, size_t{64}}) {
    stream.queue_capacity = capacity;
    const auto streamed = fixy_->RankDatasetStreaming(
        source, Application::kMissingTracks, batch, stream);
    ASSERT_TRUE(streamed.ok()) << "capacity=" << capacity;
    ASSERT_EQ(streamed->outcomes.size(), reference->outcomes.size());
    for (size_t s = 0; s < reference->outcomes.size(); ++s) {
      ExpectProposalsIdentical(reference->outcomes[s].proposals,
                               streamed->outcomes[s].proposals);
    }
  }
}

// Streaming counters must be deterministic across thread combinations,
// like the non-streaming path's.
TEST_F(BatchRankTest, StreamingCountersIdenticalAcrossThreadCounts) {
  const DatasetSceneSource source(dataset_->dataset);
  BatchOptions batch;
  batch.collect_metrics = true;
  batch.num_threads = 1;
  const auto baseline = fixy_->RankDatasetStreaming(
      source, Application::kMissingTracks, batch);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->metrics.counters.at("batch.scenes"),
            dataset_->dataset.scenes.size());
  for (const int threads : {2, 4, 8}) {
    batch.num_threads = threads;
    StreamOptions stream;
    stream.decode_threads = 2;
    const auto result = fixy_->RankDatasetStreaming(
        source, Application::kMissingTracks, batch, stream);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result->metrics.counters, baseline->metrics.counters)
        << "threads=" << threads;
    ExpectMetricsWellFormed(result->metrics);
  }
}

// A decode failure quarantines exactly that scene; the rest match the
// clean run byte for byte.
TEST_F(BatchRankTest, StreamingDecodeFailureQuarantined) {
  const FailingSource source(dataset_->dataset, {5});
  const auto clean = fixy_->RankDataset(
      dataset_->dataset, Application::kMissingTracks, BatchOptions{1});
  ASSERT_TRUE(clean.ok());
  for (const int threads : {1, 4}) {
    const auto result = fixy_->RankDatasetStreaming(
        source, Application::kMissingTracks, BatchOptions{threads});
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    ASSERT_EQ(result->outcomes.size(), dataset_->dataset.scenes.size());
    EXPECT_EQ(result->scenes_failed, 1u);
    EXPECT_EQ(result->scenes_quarantined, 1u);
    EXPECT_FALSE(result->outcomes[5].ok());
    EXPECT_EQ(result->outcomes[5].scene_name,
              dataset_->dataset.scenes[5].name());
    EXPECT_EQ(result->outcomes[5].status.code(),
              StatusCode::kFailedPrecondition);
    for (size_t s = 0; s < result->outcomes.size(); ++s) {
      if (s == 5) continue;
      ExpectProposalsIdentical(clean->outcomes[s].proposals,
                               result->outcomes[s].proposals);
    }
  }
}

// fail_fast over a streaming source reports the first dataset-order
// failure regardless of which worker saw its failure first.
TEST_F(BatchRankTest, StreamingFailFastFirstInDatasetOrder) {
  const FailingSource source(dataset_->dataset, {3, 10});
  BatchOptions batch;
  batch.fail_fast = true;
  for (const int threads : {1, 8}) {
    batch.num_threads = threads;
    const auto result = fixy_->RankDatasetStreaming(
        source, Application::kMissingTracks, batch);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_NE(result.status().message().find(
                  dataset_->dataset.scenes[3].name()),
              std::string::npos)
        << result.status();
  }
}

TEST_F(BatchRankTest, StreamingEmptySource) {
  const Dataset empty;
  const DatasetSceneSource source(empty);
  const auto result = fixy_->RankDatasetStreaming(
      source, Application::kMissingTracks);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outcomes.empty());
  EXPECT_TRUE(result->all_ok());
}

TEST(ClosestApproachBundleTest, SkipsEmptyLeadingBundle) {
  // Regression: bundle 0 is empty; the old implementation returned index 0
  // anyway, and the proposal builder then dereferenced front() of an empty
  // observation vector.
  Track track(7);
  ObservationBundle empty_bundle;
  empty_bundle.frame_index = 0;
  track.AddBundle(empty_bundle);

  ObservationBundle full_bundle;
  full_bundle.frame_index = 1;
  full_bundle.ego_position = {0.0, 0.0};
  Observation obs;
  obs.id = 1;
  obs.source = ObservationSource::kModel;
  obs.box.center = {5.0, 0.0, 0.0};
  full_bundle.observations.push_back(obs);
  track.AddBundle(full_bundle);

  const std::optional<size_t> best = internal::ClosestApproachBundle(track);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(ClosestApproachBundleTest, AllEmptyBundlesYieldsNullopt) {
  Track track(8);
  track.AddBundle(ObservationBundle{});
  track.AddBundle(ObservationBundle{});
  EXPECT_FALSE(internal::ClosestApproachBundle(track).has_value());
}

TEST(ClosestApproachBundleTest, PicksNearestNonEmptyBundle) {
  Track track(9);
  for (int i = 0; i < 3; ++i) {
    ObservationBundle bundle;
    bundle.frame_index = i;
    bundle.ego_position = {0.0, 0.0};
    Observation obs;
    obs.id = static_cast<ObservationId>(i + 1);
    // Distances 30, 10, 20 -> bundle 1 is nearest.
    const double xs[] = {30.0, 10.0, 20.0};
    obs.box.center = {xs[i], 0.0, 0.0};
    bundle.observations.push_back(obs);
    track.AddBundle(bundle);
  }
  const std::optional<size_t> best = internal::ClosestApproachBundle(track);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(RepresentativeObservationTest, PrefersModelAndGuardsEmpty) {
  ObservationBundle bundle;
  EXPECT_EQ(internal::RepresentativeObservation(bundle), nullptr);

  Observation human;
  human.id = 1;
  human.source = ObservationSource::kHuman;
  bundle.observations.push_back(human);
  const Observation* rep = internal::RepresentativeObservation(bundle);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->id, 1u);

  Observation model;
  model.id = 2;
  model.source = ObservationSource::kModel;
  bundle.observations.push_back(model);
  rep = internal::RepresentativeObservation(bundle);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->id, 2u);
}

}  // namespace
}  // namespace fixy
