// Tests for the dataset-scale batch ranking path: the RankDataset facade,
// parallel-vs-serial determinism, the cached per-application specs, and
// the ClosestApproachBundle empty-bundle regression.
#include <gtest/gtest.h>

#include <vector>

#include "core/applications.h"
#include "core/engine.h"
#include "sim/generate.h"

namespace fixy {
namespace {

// Field-exact equality: the determinism contract is byte-identical output,
// so scores compare with ==, not a tolerance.
void ExpectProposalsIdentical(const std::vector<ErrorProposal>& a,
                              const std::vector<ErrorProposal>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scene_name, b[i].scene_name) << "proposal " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "proposal " << i;
    EXPECT_EQ(a[i].track_id, b[i].track_id) << "proposal " << i;
    EXPECT_EQ(a[i].frame_index, b[i].frame_index) << "proposal " << i;
    EXPECT_EQ(a[i].object_class, b[i].object_class) << "proposal " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "proposal " << i;
    EXPECT_EQ(a[i].model_confidence, b[i].model_confidence)
        << "proposal " << i;
    EXPECT_EQ(a[i].first_frame, b[i].first_frame) << "proposal " << i;
    EXPECT_EQ(a[i].last_frame, b[i].last_frame) << "proposal " << i;
  }
}

class BatchRankTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    profile_ = new sim::SimProfile(sim::LyftLikeProfile());
    dataset_ = new sim::GeneratedDataset(
        sim::GenerateDataset(*profile_, "batch", 16, 77));
    fixy_ = new Fixy();
    const sim::GeneratedDataset training =
        sim::GenerateDataset(*profile_, "batch_train", 4, 78);
    ASSERT_TRUE(fixy_->Learn(training.dataset).ok());
  }

  static void TearDownTestSuite() {
    delete fixy_;
    delete dataset_;
    delete profile_;
    fixy_ = nullptr;
    dataset_ = nullptr;
    profile_ = nullptr;
  }

  static sim::SimProfile* profile_;
  static sim::GeneratedDataset* dataset_;
  static Fixy* fixy_;
};

sim::SimProfile* BatchRankTest::profile_ = nullptr;
sim::GeneratedDataset* BatchRankTest::dataset_ = nullptr;
Fixy* BatchRankTest::fixy_ = nullptr;

TEST_F(BatchRankTest, RequiresLearn) {
  const Fixy unlearned;
  const auto result = unlearned.RankDataset(dataset_->dataset,
                                            Application::kMissingTracks);
  EXPECT_FALSE(result.ok());
}

TEST_F(BatchRankTest, EmptyDatasetYieldsEmptyResult) {
  const Dataset empty;
  const auto result =
      fixy_->RankDataset(empty, Application::kMissingTracks);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(BatchRankTest, ReturnsOneRankedListPerSceneInOrder) {
  const auto result = fixy_->RankDataset(dataset_->dataset,
                                         Application::kMissingTracks,
                                         BatchOptions{4});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), dataset_->dataset.scenes.size());
  for (size_t s = 0; s < result->size(); ++s) {
    for (const ErrorProposal& p : (*result)[s]) {
      EXPECT_EQ(p.scene_name, dataset_->dataset.scenes[s].name());
    }
    // Ranked most-suspicious-first.
    for (size_t i = 1; i < (*result)[s].size(); ++i) {
      EXPECT_GE((*result)[s][i - 1].score, (*result)[s][i].score);
    }
  }
}

// The tentpole determinism contract: on a 16-scene sim dataset, 1 worker
// and N workers must produce identical ranked proposals for every
// application.
TEST_F(BatchRankTest, ParallelOutputIdenticalToSerial) {
  for (const Application app :
       {Application::kMissingTracks, Application::kMissingObservations,
        Application::kModelErrors}) {
    const auto serial =
        fixy_->RankDataset(dataset_->dataset, app, BatchOptions{1});
    ASSERT_TRUE(serial.ok());
    for (const int threads : {2, 8}) {
      const auto parallel =
          fixy_->RankDataset(dataset_->dataset, app, BatchOptions{threads});
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(serial->size(), parallel->size());
      for (size_t s = 0; s < serial->size(); ++s) {
        ExpectProposalsIdentical((*serial)[s], (*parallel)[s]);
      }
    }
  }
}

// The batch path must agree with the single-scene facade calls (which use
// the same cached specs).
TEST_F(BatchRankTest, BatchAgreesWithSingleSceneCalls) {
  const auto batch = fixy_->RankDataset(dataset_->dataset,
                                        Application::kMissingTracks,
                                        BatchOptions{4});
  ASSERT_TRUE(batch.ok());
  for (size_t s = 0; s < dataset_->dataset.scenes.size(); ++s) {
    const auto single =
        fixy_->FindMissingTracks(dataset_->dataset.scenes[s]);
    ASSERT_TRUE(single.ok());
    ExpectProposalsIdentical(*single, (*batch)[s]);
  }
}

// The cached-spec fast path must not change results relative to building
// the spec from the learned distributions per call (the legacy entry
// point, still used by ablation benches).
TEST_F(BatchRankTest, CachedSpecMatchesPerCallSpecConstruction) {
  const Scene& scene = dataset_->dataset.scenes.front();
  const auto cached = fixy_->FindMissingTracks(scene);
  ASSERT_TRUE(cached.ok());
  const auto legacy = FindMissingTracks(scene, fixy_->learned_features(),
                                        fixy_->options().application);
  ASSERT_TRUE(legacy.ok());
  ExpectProposalsIdentical(*cached, *legacy);
}

TEST(ClosestApproachBundleTest, SkipsEmptyLeadingBundle) {
  // Regression: bundle 0 is empty; the old implementation returned index 0
  // anyway, and the proposal builder then dereferenced front() of an empty
  // observation vector.
  Track track(7);
  ObservationBundle empty_bundle;
  empty_bundle.frame_index = 0;
  track.AddBundle(empty_bundle);

  ObservationBundle full_bundle;
  full_bundle.frame_index = 1;
  full_bundle.ego_position = {0.0, 0.0};
  Observation obs;
  obs.id = 1;
  obs.source = ObservationSource::kModel;
  obs.box.center = {5.0, 0.0, 0.0};
  full_bundle.observations.push_back(obs);
  track.AddBundle(full_bundle);

  const std::optional<size_t> best = internal::ClosestApproachBundle(track);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(ClosestApproachBundleTest, AllEmptyBundlesYieldsNullopt) {
  Track track(8);
  track.AddBundle(ObservationBundle{});
  track.AddBundle(ObservationBundle{});
  EXPECT_FALSE(internal::ClosestApproachBundle(track).has_value());
}

TEST(ClosestApproachBundleTest, PicksNearestNonEmptyBundle) {
  Track track(9);
  for (int i = 0; i < 3; ++i) {
    ObservationBundle bundle;
    bundle.frame_index = i;
    bundle.ego_position = {0.0, 0.0};
    Observation obs;
    obs.id = static_cast<ObservationId>(i + 1);
    // Distances 30, 10, 20 -> bundle 1 is nearest.
    const double xs[] = {30.0, 10.0, 20.0};
    obs.box.center = {xs[i], 0.0, 0.0};
    bundle.observations.push_back(obs);
    track.AddBundle(bundle);
  }
  const std::optional<size_t> best = internal::ClosestApproachBundle(track);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(RepresentativeObservationTest, PrefersModelAndGuardsEmpty) {
  ObservationBundle bundle;
  EXPECT_EQ(internal::RepresentativeObservation(bundle), nullptr);

  Observation human;
  human.id = 1;
  human.source = ObservationSource::kHuman;
  bundle.observations.push_back(human);
  const Observation* rep = internal::RepresentativeObservation(bundle);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->id, 1u);

  Observation model;
  model.id = 2;
  model.source = ObservationSource::kModel;
  bundle.observations.push_back(model);
  rep = internal::RepresentativeObservation(bundle);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->id, 2u);
}

}  // namespace
}  // namespace fixy
