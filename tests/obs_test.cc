// Tests for the observability layer: collector semantics, the ambient
// MetricsScope, merge rules, the JSON round-trip, validation, and the
// human table.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

#include "json/json.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"

namespace fixy::obs {
namespace {

TEST(MetricsCollectorTest, CountsAccumulate) {
  MetricsCollector collector;
  collector.Count("io.files_read");
  collector.Count("io.files_read", 3);
  collector.Count("io.bytes_read", 1024);
  const PipelineMetrics snapshot = collector.Snapshot();
  EXPECT_EQ(snapshot.counters.at("io.files_read"), 4u);
  EXPECT_EQ(snapshot.counters.at("io.bytes_read"), 1024u);
}

TEST(MetricsCollectorTest, TimersAccumulateInMilliseconds) {
  MetricsCollector collector;
  collector.AddTimeNs("io.load", 1'500'000);  // 1.5 ms
  collector.AddTimeNs("io.load", 500'000);    // 0.5 ms
  const PipelineMetrics snapshot = collector.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.timers_ms.at("io.load"), 2.0);
}

TEST(MetricsCollectorTest, GaugesKeepMaximum) {
  MetricsCollector collector;
  collector.SetGauge("batch.scene_ms_max", 3.0);
  collector.SetGauge("batch.scene_ms_max", 1.0);
  collector.SetGauge("batch.scene_ms_max", 7.0);
  EXPECT_DOUBLE_EQ(collector.Snapshot().gauges.at("batch.scene_ms_max"), 7.0);
}

TEST(MetricsCollectorTest, ResetClearsEverything) {
  MetricsCollector collector;
  collector.Count("a");
  collector.AddTimeNs("b", 1);
  collector.SetGauge("c", 1.0);
  collector.Reset();
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(PipelineMetricsTest, MergeAddsCountersAndTimersMaxesGauges) {
  PipelineMetrics a;
  a.counters["n"] = 2;
  a.timers_ms["t"] = 1.5;
  a.gauges["g"] = 4.0;
  PipelineMetrics b;
  b.counters["n"] = 3;
  b.counters["only_b"] = 1;
  b.timers_ms["t"] = 0.5;
  b.gauges["g"] = 2.0;
  a.MergeFrom(b);
  EXPECT_EQ(a.counters.at("n"), 5u);
  EXPECT_EQ(a.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.timers_ms.at("t"), 2.0);
  EXPECT_DOUBLE_EQ(a.gauges.at("g"), 4.0);
}

TEST(PipelineMetricsTest, MergeIsOrderInsensitive) {
  PipelineMetrics a, b;
  a.counters["n"] = 2;
  a.gauges["g"] = 1.0;
  b.counters["n"] = 5;
  b.gauges["g"] = 3.0;
  PipelineMetrics ab = a;
  ab.MergeFrom(b);
  PipelineMetrics ba = b;
  ba.MergeFrom(a);
  EXPECT_EQ(ab.counters, ba.counters);
  EXPECT_EQ(ab.gauges, ba.gauges);
}

TEST(MetricsScopeTest, HelpersNoOpWithoutScope) {
  ASSERT_EQ(Current(), nullptr);
  EXPECT_FALSE(Enabled());
  // Must not crash; nothing to observe.
  Count("ignored");
  AddTimeNs("ignored", 10);
  SetGauge("ignored", 1.0);
}

TEST(MetricsScopeTest, InstallsAndRestoresNested) {
  MetricsCollector outer, inner;
  ASSERT_EQ(Current(), nullptr);
  {
    const MetricsScope outer_scope(&outer);
    EXPECT_EQ(Current(), &outer);
    Count("seen_by_outer");
    {
      const MetricsScope inner_scope(&inner);
      EXPECT_EQ(Current(), &inner);
      Count("seen_by_inner");
    }
    EXPECT_EQ(Current(), &outer);
    {
      // Null scope silences metrics even inside an active scope.
      const MetricsScope silence(nullptr);
      EXPECT_FALSE(Enabled());
      Count("silenced");
    }
  }
  EXPECT_EQ(Current(), nullptr);
  EXPECT_EQ(outer.Snapshot().counters.count("seen_by_outer"), 1u);
  EXPECT_EQ(outer.Snapshot().counters.count("silenced"), 0u);
  EXPECT_EQ(inner.Snapshot().counters.at("seen_by_inner"), 1u);
  EXPECT_EQ(inner.Snapshot().counters.count("seen_by_outer"), 0u);
}

TEST(MetricsScopeTest, ScopeIsPerThread) {
  MetricsCollector collector;
  const MetricsScope scope(&collector);
  bool other_thread_enabled = true;
  std::thread worker([&other_thread_enabled] {
    // A fresh thread has no ambient collector, regardless of the parent.
    other_thread_enabled = Enabled();
    Count("from_other_thread");
  });
  worker.join();
  EXPECT_FALSE(other_thread_enabled);
  EXPECT_EQ(collector.Snapshot().counters.count("from_other_thread"), 0u);
}

TEST(MetricsScopeTest, CollectorIsThreadSafeWhenShared) {
  MetricsCollector collector;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&collector] {
      const MetricsScope scope(&collector);
      for (int i = 0; i < kPerThread; ++i) Count("shared");
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(collector.Snapshot().counters.at("shared"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(StageTimerTest, MonotonicNonNegative) {
  const StageTimer timer;
  const uint64_t first = timer.ElapsedNs();
  const uint64_t second = timer.ElapsedNs();
  EXPECT_GE(second, first);
  EXPECT_GE(timer.ElapsedMs(), 0.0);
}

TEST(ScopedStageTimerTest, RecordsOnDestruction) {
  MetricsCollector collector;
  const MetricsScope scope(&collector);
  { const ScopedStageTimer timer("stage.x"); }
  const PipelineMetrics snapshot = collector.Snapshot();
  ASSERT_EQ(snapshot.timers_ms.count("stage.x"), 1u);
  EXPECT_GE(snapshot.timers_ms.at("stage.x"), 0.0);
}

TEST(TraceSpanTest, RecordsCallCounterAndTimer) {
  MetricsCollector collector;
  const MetricsScope scope(&collector);
  { const TraceSpan span("scene"); }
  { const TraceSpan span("scene"); }
  const PipelineMetrics snapshot = collector.Snapshot();
  EXPECT_EQ(snapshot.counters.at("span.scene.calls"), 2u);
  ASSERT_EQ(snapshot.timers_ms.count("span.scene"), 1u);
  EXPECT_GE(snapshot.timers_ms.at("span.scene"), 0.0);
}

PipelineMetrics SampleMetrics() {
  PipelineMetrics metrics;
  metrics.counters["io.files_read"] = 16;
  metrics.counters["stats.kde_evals"] = 123456;
  metrics.timers_ms["io.load"] = 12.25;
  metrics.timers_ms["batch.total"] = 98.5;
  metrics.gauges["batch.threads"] = 8.0;
  return metrics;
}

TEST(MetricsJsonTest, RoundTripsThroughJsonText) {
  const PipelineMetrics metrics = SampleMetrics();
  // Full fidelity through the real serialization path: value -> text ->
  // parse -> value, not just the in-memory converters.
  const std::string text = json::Write(MetricsToJson(metrics), true);
  const Result<json::Value> parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Result<PipelineMetrics> restored = MetricsFromJson(*parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->counters, metrics.counters);
  EXPECT_EQ(restored->timers_ms, metrics.timers_ms);
  EXPECT_EQ(restored->gauges, metrics.gauges);
}

TEST(MetricsJsonTest, SerializationIsByteStable) {
  // Two structurally identical snapshots serialize to identical bytes —
  // the property the cross-thread-count CLI acceptance test relies on.
  const std::string a = json::Write(MetricsToJson(SampleMetrics()), true);
  const std::string b = json::Write(MetricsToJson(SampleMetrics()), true);
  EXPECT_EQ(a, b);
}

TEST(MetricsJsonTest, RejectsWrongFormatMarker) {
  json::Object obj;
  obj["format"] = "not-metrics";
  obj["version"] = 1;
  obj["counters"] = json::Object{};
  obj["timers_ms"] = json::Object{};
  obj["gauges"] = json::Object{};
  EXPECT_FALSE(MetricsFromJson(json::Value(obj)).ok());
}

TEST(MetricsJsonTest, RejectsUnsupportedVersion) {
  json::Object obj;
  obj["format"] = "fixy-metrics";
  obj["version"] = 99;
  obj["counters"] = json::Object{};
  obj["timers_ms"] = json::Object{};
  obj["gauges"] = json::Object{};
  EXPECT_FALSE(MetricsFromJson(json::Value(obj)).ok());
}

TEST(MetricsJsonTest, RejectsNegativeCounter) {
  json::Object counters;
  counters["bad"] = -3;
  json::Object obj;
  obj["format"] = "fixy-metrics";
  obj["version"] = 1;
  obj["counters"] = std::move(counters);
  obj["timers_ms"] = json::Object{};
  obj["gauges"] = json::Object{};
  EXPECT_FALSE(MetricsFromJson(json::Value(obj)).ok());
}

TEST(MetricsJsonTest, SaveAndLoadRoundTrip) {
  const PipelineMetrics metrics = SampleMetrics();
  const std::string path =
      ::testing::TempDir() + "/obs_test_metrics.json";
  ASSERT_TRUE(SaveMetrics(metrics, path).ok());
  const Result<PipelineMetrics> loaded = LoadMetrics(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->counters, metrics.counters);
  EXPECT_EQ(loaded->timers_ms, metrics.timers_ms);
  EXPECT_EQ(loaded->gauges, metrics.gauges);
}

TEST(ValidateMetricsTest, AcceptsWellFormedSnapshot) {
  EXPECT_TRUE(ValidateMetrics(SampleMetrics()).ok());
}

TEST(ValidateMetricsTest, RejectsNegativeTimer) {
  PipelineMetrics metrics = SampleMetrics();
  metrics.timers_ms["io.load"] = -1.0;
  EXPECT_FALSE(ValidateMetrics(metrics).ok());
}

TEST(ValidateMetricsTest, RejectsNonFiniteValues) {
  PipelineMetrics with_nan_timer = SampleMetrics();
  with_nan_timer.timers_ms["io.load"] =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateMetrics(with_nan_timer).ok());

  PipelineMetrics with_inf_gauge = SampleMetrics();
  with_inf_gauge.gauges["batch.threads"] =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateMetrics(with_inf_gauge).ok());
}

TEST(FormatMetricsTableTest, ContainsEveryMetricName) {
  const std::string table = FormatMetricsTable(SampleMetrics());
  EXPECT_NE(table.find("io.files_read"), std::string::npos);
  EXPECT_NE(table.find("stats.kde_evals"), std::string::npos);
  EXPECT_NE(table.find("io.load"), std::string::npos);
  EXPECT_NE(table.find("batch.threads"), std::string::npos);
}

}  // namespace
}  // namespace fixy::obs
