// Tests for src/io: scene/dataset serialization round-trips and failure
// injection on malformed documents and filesystem errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/scene_io.h"

namespace fixy::io {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source, double x,
                    int frame, double confidence = 1.0) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = ObjectClass::kTruck;
  obs.box = geom::Box3d({x, -2.5, 1.6}, 8.1, 2.8, 3.2, 0.31);
  obs.frame_index = frame;
  obs.timestamp = frame / 5.0;
  obs.confidence = confidence;
  return obs;
}

Scene MakeScene(const std::string& name = "scene_a") {
  Scene scene(name, 5.0);
  ObservationId id = 1;
  for (int f = 0; f < 4; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f / 5.0;
    frame.ego_position = {1.6 * f, 0.25};
    frame.ego_yaw = 0.01 * f;
    frame.observations.push_back(MakeObs(id++, ObservationSource::kHuman,
                                         12.0 + f, f));
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kModel, 12.1 + f, f, 0.87));
    scene.AddFrame(std::move(frame));
  }
  return scene;
}

std::string TempDir() {
  static int counter = 0;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("fixy_io_test_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(SceneIoTest, StringRoundTripPreservesEverything) {
  const Scene original = MakeScene();
  const auto loaded = SceneFromString(SceneToString(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name(), original.name());
  EXPECT_DOUBLE_EQ(loaded->frame_rate_hz(), original.frame_rate_hz());
  ASSERT_EQ(loaded->frame_count(), original.frame_count());
  for (size_t f = 0; f < original.frame_count(); ++f) {
    const Frame& a = original.frames()[f];
    const Frame& b = loaded->frames()[f];
    EXPECT_EQ(a.index, b.index);
    EXPECT_DOUBLE_EQ(a.timestamp, b.timestamp);
    EXPECT_DOUBLE_EQ(a.ego_position.x, b.ego_position.x);
    EXPECT_DOUBLE_EQ(a.ego_yaw, b.ego_yaw);
    ASSERT_EQ(a.observations.size(), b.observations.size());
    for (size_t o = 0; o < a.observations.size(); ++o) {
      const Observation& oa = a.observations[o];
      const Observation& ob = b.observations[o];
      EXPECT_EQ(oa.id, ob.id);
      EXPECT_EQ(oa.source, ob.source);
      EXPECT_EQ(oa.object_class, ob.object_class);
      EXPECT_DOUBLE_EQ(oa.box.center.x, ob.box.center.x);
      EXPECT_DOUBLE_EQ(oa.box.yaw, ob.box.yaw);
      EXPECT_DOUBLE_EQ(oa.confidence, ob.confidence);
      EXPECT_DOUBLE_EQ(oa.timestamp, ob.timestamp);
    }
  }
}

TEST(SceneIoTest, PrettyOutputAlsoParses) {
  const Scene original = MakeScene();
  const auto loaded = SceneFromString(SceneToString(original, true));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalObservations(), original.TotalObservations());
}

TEST(SceneIoTest, EmptySceneRoundTrips) {
  const Scene empty("empty", 10.0);
  const auto loaded = SceneFromString(SceneToString(empty));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->frame_count(), 0u);
}

TEST(SceneIoTest, FileRoundTrip) {
  const std::string dir = TempDir();
  const Scene original = MakeScene();
  ASSERT_TRUE(SaveScene(original, dir + "/s.fixy.json").ok());
  const auto loaded = LoadScene(dir + "/s.fixy.json");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalObservations(), original.TotalObservations());
  std::filesystem::remove_all(dir);
}

TEST(SceneIoTest, LoadMissingFileFails) {
  const auto loaded = LoadScene("/nonexistent/path/file.json");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SceneIoTest, RejectsWrongFormatMarker) {
  const auto loaded = SceneFromString(
      R"({"format":"other","version":1,"name":"x","frame_rate_hz":10,"frames":[]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SceneIoTest, RejectsWrongVersion) {
  const auto loaded = SceneFromString(
      R"({"format":"fixy-scene","version":99,"name":"x","frame_rate_hz":10,"frames":[]})");
  EXPECT_FALSE(loaded.ok());
}

TEST(SceneIoTest, RejectsMissingFields) {
  EXPECT_FALSE(SceneFromString(R"({"format":"fixy-scene","version":1})").ok());
  EXPECT_FALSE(SceneFromString("[]").ok());
  EXPECT_FALSE(SceneFromString("not json at all").ok());
}

TEST(SceneIoTest, RejectsUnknownEnumValues) {
  Scene scene = MakeScene();
  std::string text = SceneToString(scene);
  // Corrupt the source enum.
  const size_t pos = text.find("\"human\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "\"alien\"");
  EXPECT_FALSE(SceneFromString(text).ok());
}

TEST(SceneIoTest, RejectsInconsistentScene) {
  // Two observations sharing an id fail Scene::Validate on load.
  Scene scene = MakeScene();
  std::string text = SceneToString(scene);
  text.replace(text.find("\"id\":2"), 6, "\"id\":1");
  const auto loaded = SceneFromString(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetIoTest, SaveAndLoadDataset) {
  const std::string dir = TempDir();
  Dataset dataset;
  dataset.name = "mini";
  dataset.scenes.push_back(MakeScene("scene_a"));
  dataset.scenes.push_back(MakeScene("scene_b"));
  ASSERT_TRUE(SaveDataset(dataset, dir).ok());
  const auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name, "mini");
  ASSERT_EQ(loaded->scenes.size(), 2u);
  EXPECT_EQ(loaded->scenes[0].name(), "scene_a");
  EXPECT_EQ(loaded->scenes[1].name(), "scene_b");
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, RejectsUnnamedScene) {
  const std::string dir = TempDir();
  Dataset dataset;
  dataset.scenes.push_back(MakeScene(""));
  EXPECT_FALSE(SaveDataset(dataset, dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, LoadMissingManifestFails) {
  const std::string dir = TempDir();
  EXPECT_FALSE(LoadDataset(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, LoadCorruptManifestFails) {
  const std::string dir = TempDir();
  std::ofstream(dir + "/manifest.json") << "{broken";
  EXPECT_FALSE(LoadDataset(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, LoadManifestReferencingMissingSceneFails) {
  const std::string dir = TempDir();
  std::ofstream(dir + "/manifest.json")
      << R"({"format":"fixy-dataset","version":1,"name":"x","scenes":["gone.json"]})";
  const auto loaded = LoadDataset(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::filesystem::remove_all(dir);
}

// Writes a three-scene dataset, then corrupts scene_b's file on disk.
std::string MakeDatasetWithCorruptScene() {
  const std::string dir = TempDir();
  Dataset dataset;
  dataset.name = "partial";
  dataset.scenes.push_back(MakeScene("scene_a"));
  dataset.scenes.push_back(MakeScene("scene_b"));
  dataset.scenes.push_back(MakeScene("scene_c"));
  EXPECT_TRUE(SaveDataset(dataset, dir).ok());
  std::ofstream(dir + "/scene_b.fixy.json") << "{definitely not a scene";
  return dir;
}

TEST(DatasetIoTest, StrictLoadFailsOnCorruptSceneFile) {
  const std::string dir = MakeDatasetWithCorruptScene();
  EXPECT_FALSE(LoadDataset(dir).ok());
  DatasetLoadOptions strict;
  strict.tolerant = false;
  EXPECT_FALSE(LoadDataset(dir, strict).ok());
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, TolerantLoadSkipsCorruptSceneWithDiagnostic) {
  const std::string dir = MakeDatasetWithCorruptScene();
  DatasetLoadOptions tolerant;
  tolerant.tolerant = true;
  const auto loaded = LoadDataset(dir, tolerant);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->dataset.scenes.size(), 2u);
  EXPECT_EQ(loaded->dataset.scenes[0].name(), "scene_a");
  EXPECT_EQ(loaded->dataset.scenes[1].name(), "scene_c");
  ASSERT_EQ(loaded->skipped.size(), 1u);
  EXPECT_EQ(loaded->skipped[0].file, "scene_b.fixy.json");
  EXPECT_FALSE(loaded->skipped[0].status.ok());
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, TolerantLoadSkipsUnreadableSceneFile) {
  const std::string dir = TempDir();
  Dataset dataset;
  dataset.name = "gone";
  dataset.scenes.push_back(MakeScene("scene_a"));
  ASSERT_TRUE(SaveDataset(dataset, dir).ok());
  // Manifest lists a file that does not exist on disk.
  std::ofstream(dir + "/manifest.json")
      << R"({"format":"fixy-dataset","version":1,"name":"gone",)"
      << R"("scenes":["scene_a.fixy.json","vanished.fixy.json"]})";
  DatasetLoadOptions tolerant;
  tolerant.tolerant = true;
  const auto loaded = LoadDataset(dir, tolerant);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->dataset.scenes.size(), 1u);
  ASSERT_EQ(loaded->skipped.size(), 1u);
  EXPECT_EQ(loaded->skipped[0].file, "vanished.fixy.json");
  EXPECT_EQ(loaded->skipped[0].status.code(), StatusCode::kIoError);
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, TolerantLoadStillRejectsBrokenManifest) {
  const std::string dir = TempDir();
  std::ofstream(dir + "/manifest.json") << "{broken";
  DatasetLoadOptions tolerant;
  tolerant.tolerant = true;
  EXPECT_FALSE(LoadDataset(dir, tolerant).ok());
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, TolerantLoadOnCleanDatasetSkipsNothing) {
  const std::string dir = TempDir();
  Dataset dataset;
  dataset.name = "clean";
  dataset.scenes.push_back(MakeScene("scene_a"));
  dataset.scenes.push_back(MakeScene("scene_b"));
  ASSERT_TRUE(SaveDataset(dataset, dir).ok());
  DatasetLoadOptions tolerant;
  tolerant.tolerant = true;
  const auto loaded = LoadDataset(dir, tolerant);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.scenes.size(), 2u);
  EXPECT_TRUE(loaded->skipped.empty());
  std::filesystem::remove_all(dir);
}

TEST(SceneIoTest, SerializationIsDeterministic) {
  const Scene scene = MakeScene();
  EXPECT_EQ(SceneToString(scene), SceneToString(scene));
}

}  // namespace
}  // namespace fixy::io
