// Cross-module property tests: invariants that must hold for arbitrary
// simulated workloads, checked over parameterized seed sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "core/engine.h"
#include "dsl/track_builder.h"
#include "eval/metrics.h"
#include "geometry/iou.h"
#include "sim/generate.h"

namespace fixy {
namespace {

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// ---- Track assembly conserves observations. ----

TEST_P(SeededPropertyTest, TrackBuilderConservesObservations) {
  const auto generated =
      sim::GenerateScene(sim::LyftLikeProfile(), "prop", GetParam());
  const auto tracks = TrackBuilder().Build(generated.scene);
  ASSERT_TRUE(tracks.ok());
  std::multiset<ObservationId> in_scene;
  for (const Frame& frame : generated.scene.frames()) {
    for (const Observation& obs : frame.observations) {
      in_scene.insert(obs.id);
    }
  }
  std::multiset<ObservationId> in_tracks;
  for (const Track& track : tracks->tracks) {
    for (const ObservationBundle& bundle : track.bundles()) {
      for (const Observation& obs : bundle.observations) {
        in_tracks.insert(obs.id);
      }
    }
  }
  EXPECT_EQ(in_scene, in_tracks);
}

// ---- Bundles are time-ordered and intra-frame. ----

TEST_P(SeededPropertyTest, TrackBundlesAreOrderedAndCoherent) {
  const auto generated =
      sim::GenerateScene(sim::InternalLikeProfile(), "prop", GetParam());
  const auto tracks = TrackBuilder().Build(generated.scene);
  ASSERT_TRUE(tracks.ok());
  for (const Track& track : tracks->tracks) {
    int prev_frame = -1;
    for (const ObservationBundle& bundle : track.bundles()) {
      EXPECT_GT(bundle.frame_index, prev_frame);
      prev_frame = bundle.frame_index;
      ASSERT_FALSE(bundle.observations.empty());
      for (const Observation& obs : bundle.observations) {
        EXPECT_EQ(obs.frame_index, bundle.frame_index);
      }
    }
  }
}

// ---- Bundling is invariant to observation order within frames. ----

TEST_P(SeededPropertyTest, RankingInvariantToObservationOrder) {
  const sim::SimProfile profile = sim::LyftLikeProfile();
  Fixy fixy;
  {
    const auto training =
        sim::GenerateDataset(profile, "prop_train", 2, GetParam());
    ASSERT_TRUE(fixy.Learn(training.dataset).ok());
  }
  const auto generated = sim::GenerateScene(profile, "prop", GetParam() + 7);
  Scene shuffled = generated.scene;
  Rng rng(GetParam() ^ 0xABCD);
  for (Frame& frame : shuffled.frames()) {
    for (size_t i = frame.observations.size(); i > 1; --i) {
      std::swap(frame.observations[i - 1],
                frame.observations[rng.UniformInt(i)]);
    }
  }
  const auto a = fixy.FindMissingTracks(generated.scene).value();
  const auto b = fixy.FindMissingTracks(shuffled).value();
  ASSERT_EQ(a.size(), b.size());
  // Scores must agree pairwise after sorting (track ids can differ since
  // assembly order differs).
  std::vector<double> scores_a;
  std::vector<double> scores_b;
  for (const auto& p : a) scores_a.push_back(p.score);
  for (const auto& p : b) scores_b.push_back(p.score);
  std::sort(scores_a.begin(), scores_a.end());
  std::sort(scores_b.begin(), scores_b.end());
  for (size_t i = 0; i < scores_a.size(); ++i) {
    EXPECT_NEAR(scores_a[i], scores_b[i], 1e-9);
  }
}

// ---- Ledger consistency: missed tracks really have no human labels. ----

TEST_P(SeededPropertyTest, MissingTrackErrorsHaveNoHumanLabels) {
  const auto generated =
      sim::GenerateScene(sim::LyftLikeProfile(), "prop", GetParam());
  for (const sim::GtError& error : generated.ledger.errors) {
    if (error.type != sim::GtErrorType::kMissingTrack) continue;
    for (const auto& [frame_index, box] : error.boxes) {
      if (frame_index < 0 ||
          frame_index >= static_cast<int>(generated.scene.frame_count())) {
        continue;
      }
      const Frame& frame =
          generated.scene.frames()[static_cast<size_t>(frame_index)];
      for (const Observation& obs : frame.observations) {
        if (obs.source != ObservationSource::kHuman) continue;
        EXPECT_LT(geom::BevIou(obs.box, box), 0.5)
            << "human label overlaps a 'missing' track at frame "
            << frame_index;
      }
    }
  }
}

// ---- Every human label corresponds to a ground-truth object. ----

TEST_P(SeededPropertyTest, HumanLabelsAreGrounded) {
  const auto generated =
      sim::GenerateScene(sim::InternalLikeProfile(), "prop", GetParam());
  for (const Frame& frame : generated.scene.frames()) {
    for (const Observation& obs : frame.observations) {
      if (obs.source != ObservationSource::kHuman) continue;
      double best_iou = 0.0;
      for (const sim::GtObject& object : generated.ground_truth.objects) {
        best_iou = std::max(
            best_iou, geom::BevIou(obs.box, object.BoxAt(frame.index)));
      }
      EXPECT_GT(best_iou, 0.3) << obs.ToString();
    }
  }
}

// ---- Precision/recall bounds. ----

TEST_P(SeededPropertyTest, MetricBounds) {
  const sim::SimProfile profile = sim::LyftLikeProfile();
  Fixy fixy;
  {
    const auto training =
        sim::GenerateDataset(profile, "prop_train", 2, GetParam());
    ASSERT_TRUE(fixy.Learn(training.dataset).ok());
  }
  const auto generated = sim::GenerateScene(profile, "prop", GetParam() + 3);
  const auto ranked = fixy.FindMissingTracks(generated.scene).value();
  const auto claimable = eval::ClaimableErrors(
      generated.ledger, ProposalKind::kMissingTrack, generated.scene.name());
  for (size_t k : {1u, 5u, 10u, 100u}) {
    const auto p = eval::PrecisionAtK(ranked, claimable, k);
    EXPECT_GE(p.precision, 0.0);
    EXPECT_LE(p.precision, 1.0);
    EXPECT_LE(p.hits, p.considered);
    EXPECT_LE(p.considered, std::min(k, ranked.size()));
  }
  const auto r = eval::RecallOf(ranked, claimable);
  EXPECT_GE(r.recall, 0.0);
  EXPECT_LE(r.recall, 1.0);
  EXPECT_LE(r.found, r.total);
  // Recall of the full list upper-bounds recall of any prefix.
  const auto r_top =
      eval::RecallOf(std::vector<ErrorProposal>(
                         ranked.begin(),
                         ranked.begin() +
                             std::min<size_t>(5, ranked.size())),
                     claimable);
  EXPECT_LE(r_top.found, r.found);
}

// ---- IoU agrees with Monte Carlo estimation. ----

TEST_P(SeededPropertyTest, IouMatchesMonteCarlo) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const geom::Box3d a({rng.Uniform(-2, 2), rng.Uniform(-2, 2), 1.0},
                        rng.Uniform(1, 5), rng.Uniform(1, 3), 2.0,
                        rng.Uniform(0, 2 * M_PI));
    const geom::Box3d b({rng.Uniform(-2, 2), rng.Uniform(-2, 2), 1.0},
                        rng.Uniform(1, 5), rng.Uniform(1, 3), 2.0,
                        rng.Uniform(0, 2 * M_PI));
    // Monte Carlo estimate over the bounding region.
    const int n = 40000;
    int in_a = 0;
    int in_b = 0;
    int in_both = 0;
    for (int i = 0; i < n; ++i) {
      const geom::Vec2 p{rng.Uniform(-8, 8), rng.Uniform(-8, 8)};
      const bool hit_a = a.BevContains(p);
      const bool hit_b = b.BevContains(p);
      if (hit_a) ++in_a;
      if (hit_b) ++in_b;
      if (hit_a && hit_b) ++in_both;
    }
    if (in_a + in_b - in_both == 0) continue;
    const double mc_iou = static_cast<double>(in_both) /
                          static_cast<double>(in_a + in_b - in_both);
    EXPECT_NEAR(geom::BevIou(a, b), mc_iou, 0.05);
  }
}

// ---- Error-rate monotonicity: more injected errors at higher rates. ----

TEST(SimMonotonicityTest, MissingTrackRateScalesErrorCount) {
  auto count_errors = [](double rate) {
    sim::SimProfile profile = sim::LyftLikeProfile();
    profile.labeler.missing_track_rate = rate;
    profile.labeler.short_visibility_miss_rate = rate;
    size_t count = 0;
    for (int i = 0; i < 6; ++i) {
      const auto generated = sim::GenerateScene(
          profile, "mono_" + std::to_string(i), 1234);
      count +=
          generated.ledger.CountByType(sim::GtErrorType::kMissingTrack);
    }
    return count;
  };
  const size_t low = count_errors(0.02);
  const size_t mid = count_errors(0.2);
  const size_t high = count_errors(0.6);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace fixy
