// Tests for src/sim: priors, world generation, sensor/occlusion model,
// label-error injection (ledger consistency), detector channel, profiles,
// and end-to-end scene generation determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "sim/detector.h"
#include "sim/generate.h"
#include "sim/ground_truth.h"
#include "sim/labeler.h"
#include "sim/ledger.h"
#include "sim/object_priors.h"
#include "sim/profiles.h"
#include "sim/sensor.h"
#include "sim/world.h"

namespace fixy::sim {
namespace {

// ---------------------------------------------------------------- Priors

TEST(ObjectPriorsTest, ClassScalesAreOrdered) {
  EXPECT_GT(PriorFor(ObjectClass::kTruck).length_mean,
            PriorFor(ObjectClass::kCar).length_mean);
  EXPECT_GT(PriorFor(ObjectClass::kCar).length_mean,
            PriorFor(ObjectClass::kMotorcycle).length_mean);
  EXPECT_GT(PriorFor(ObjectClass::kMotorcycle).length_mean,
            PriorFor(ObjectClass::kPedestrian).length_mean);
}

TEST(ObjectPriorsTest, SampledSizesArePositiveAndNearMean) {
  Rng rng(1);
  for (ObjectClass cls : kAllObjectClasses) {
    const ClassPrior& prior = PriorFor(cls);
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
      const SampledSize size = SampleSize(cls, rng);
      EXPECT_GT(size.length, 0.0);
      EXPECT_GT(size.width, 0.0);
      EXPECT_GT(size.height, 0.0);
      sum += size.length;
    }
    EXPECT_NEAR(sum / 2000.0, prior.length_mean, prior.length_sd * 0.2);
  }
}

TEST(ObjectPriorsTest, SpeedsRespectStationaryFraction) {
  Rng rng(2);
  int stationary = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double speed = SampleSpeed(ObjectClass::kCar, rng);
    EXPECT_GE(speed, 0.0);
    if (speed == 0.0) ++stationary;
  }
  EXPECT_NEAR(static_cast<double>(stationary) / n,
              PriorFor(ObjectClass::kCar).stationary_fraction, 0.03);
}

// ---------------------------------------------------------- GroundTruth

TEST(GroundTruthTest, BoxAtUsesStateAndExtents) {
  GtObject object;
  object.object_class = ObjectClass::kCar;
  object.length = 4.0;
  object.width = 2.0;
  object.height = 1.6;
  GtState state;
  state.position = {10, 5};
  state.yaw = 0.3;
  object.states.push_back(state);
  const geom::Box3d box = object.BoxAt(0);
  EXPECT_DOUBLE_EQ(box.center.x, 10.0);
  EXPECT_DOUBLE_EQ(box.center.z, 0.8);
  EXPECT_DOUBLE_EQ(box.yaw, 0.3);
  EXPECT_DOUBLE_EQ(box.Volume(), 4.0 * 2.0 * 1.6);
}

TEST(GroundTruthTest, VisibleFrameCount) {
  GtObject object;
  object.states.resize(5);
  object.states[1].visible = false;
  object.states[3].visible = false;
  EXPECT_EQ(object.VisibleFrameCount(), 3);
}

// ----------------------------------------------------------------- World

TEST(WorldTest, GeneratesRequestedShape) {
  WorldParams params;
  params.duration_seconds = 10.0;
  params.frame_rate_hz = 10.0;
  Rng rng(3);
  const GtScene scene = GenerateWorld(params, "w", rng);
  EXPECT_EQ(scene.num_frames, 100);
  EXPECT_EQ(scene.ego_positions.size(), 100u);
  EXPECT_FALSE(scene.objects.empty());
  for (const GtObject& object : scene.objects) {
    EXPECT_EQ(object.states.size(), 100u);
    EXPECT_GT(object.length, 0.0);
  }
}

TEST(WorldTest, EgoMovesAtConstantSpeed) {
  WorldParams params;
  params.ego_speed_mps = 10.0;
  params.frame_rate_hz = 10.0;
  Rng rng(4);
  const GtScene scene = GenerateWorld(params, "w", rng);
  EXPECT_NEAR(scene.ego_positions[10].x - scene.ego_positions[0].x, 10.0,
              1e-9);
  EXPECT_DOUBLE_EQ(scene.ego_positions[5].y, 0.0);
}

TEST(WorldTest, DeterministicForSameSeed) {
  WorldParams params;
  Rng rng1(5);
  Rng rng2(5);
  const GtScene a = GenerateWorld(params, "w", rng1);
  const GtScene b = GenerateWorld(params, "w", rng2);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].object_class, b.objects[i].object_class);
    EXPECT_DOUBLE_EQ(a.objects[i].states[50].position.x,
                     b.objects[i].states[50].position.x);
  }
}

TEST(WorldTest, MovingVehiclesActuallyMove) {
  WorldParams params;
  params.mean_object_count = 60.0;
  Rng rng(6);
  const GtScene scene = GenerateWorld(params, "w", rng);
  int moving = 0;
  for (const GtObject& object : scene.objects) {
    const double displacement =
        (object.states.back().position - object.states.front().position)
            .Norm();
    if (object.states[0].speed > 0.5) {
      EXPECT_GT(displacement, 1.0);
      ++moving;
    }
  }
  EXPECT_GT(moving, 10);
}

TEST(WorldTest, TimestampsFollowFrameRate) {
  WorldParams params;
  params.frame_rate_hz = 5.0;
  Rng rng(7);
  const GtScene scene = GenerateWorld(params, "w", rng);
  EXPECT_DOUBLE_EQ(scene.TimestampOf(0), 0.0);
  EXPECT_DOUBLE_EQ(scene.TimestampOf(5), 1.0);
}

// ---------------------------------------------------------------- Sensor

GtScene TwoObjectWorld() {
  GtScene scene;
  scene.name = "sensor";
  scene.frame_rate_hz = 10.0;
  scene.num_frames = 1;
  scene.ego_positions = {{0, 0}};
  scene.ego_yaws = {0.0};
  // A large truck 10 m ahead, directly between ego and a car 30 m ahead.
  GtObject truck;
  truck.gt_id = 0;
  truck.object_class = ObjectClass::kTruck;
  truck.length = 8;
  truck.width = 3;
  truck.height = 3.5;
  truck.states.push_back({{10, 0}, 0.0, 0.0, true, 0.0});
  GtObject car;
  car.gt_id = 1;
  car.object_class = ObjectClass::kCar;
  car.length = 4.5;
  car.width = 1.9;
  car.height = 1.7;
  car.states.push_back({{30, 0}, 0.0, 0.0, true, 0.0});
  scene.objects = {truck, car};
  return scene;
}

TEST(SensorTest, OcclusionShadowsFartherObject) {
  GtScene scene = TwoObjectWorld();
  ComputeVisibility(&scene);
  EXPECT_TRUE(scene.objects[0].states[0].visible);   // truck: near field
  EXPECT_FALSE(scene.objects[1].states[0].visible);  // car: fully shadowed
  EXPECT_GT(scene.objects[1].states[0].occlusion_fraction, 0.6);
}

TEST(SensorTest, OffAxisObjectStaysVisible) {
  GtScene scene = TwoObjectWorld();
  scene.objects[1].states[0].position = {30, 25};  // well off the truck axis
  ComputeVisibility(&scene);
  EXPECT_TRUE(scene.objects[1].states[0].visible);
}

TEST(SensorTest, RangeLimitHidesFarObjects) {
  GtScene scene = TwoObjectWorld();
  scene.objects[1].states[0].position = {200, 0};
  SensorParams params;
  params.max_range_meters = 75.0;
  ComputeVisibility(&scene, params);
  EXPECT_FALSE(scene.objects[1].states[0].visible);
  EXPECT_DOUBLE_EQ(scene.objects[1].states[0].occlusion_fraction, 1.0);
}

TEST(SensorTest, NearFieldNeverOccluded) {
  GtScene scene = TwoObjectWorld();
  scene.objects[1].states[0].position = {4, 0};  // inside near field
  ComputeVisibility(&scene);
  EXPECT_TRUE(scene.objects[1].states[0].visible);
}

// --------------------------------------------------------------- Labeler

GtScene SimpleVisibleWorld(int objects, int frames) {
  GtScene scene;
  scene.name = "labeler";
  scene.frame_rate_hz = 10.0;
  scene.num_frames = frames;
  for (int f = 0; f < frames; ++f) {
    scene.ego_positions.push_back({0, 0});
    scene.ego_yaws.push_back(0.0);
  }
  for (int i = 0; i < objects; ++i) {
    GtObject object;
    object.gt_id = static_cast<uint64_t>(i);
    object.object_class = ObjectClass::kCar;
    object.length = 4.5;
    object.width = 1.9;
    object.height = 1.7;
    for (int f = 0; f < frames; ++f) {
      object.states.push_back(
          {{10.0 + 8.0 * i, 0.4 * f}, 0.0, 4.0, true, 0.0});
    }
    scene.objects.push_back(std::move(object));
  }
  return scene;
}

TEST(LabelerTest, PerfectVendorLabelsEverything) {
  const GtScene gt = SimpleVisibleWorld(5, 10);
  LabelerProfile profile;
  profile.missing_track_rate = 0.0;
  profile.short_visibility_miss_rate = 0.0;
  profile.missing_obs_rate = 0.0;
  Rng rng(8);
  ObservationId next_id = 1;
  GtLedger ledger;
  const LabelerOutput output =
      GenerateHumanLabels(gt, profile, rng, &next_id, &ledger);
  EXPECT_TRUE(ledger.errors.empty());
  size_t total = 0;
  for (const auto& frame : output.observations) total += frame.size();
  EXPECT_EQ(total, 50u);
}

TEST(LabelerTest, ExactMissingTracksHonored) {
  const GtScene gt = SimpleVisibleWorld(10, 10);
  LabelerProfile profile;
  profile.exact_missing_tracks = 4;
  Rng rng(9);
  ObservationId next_id = 1;
  GtLedger ledger;
  GenerateHumanLabels(gt, profile, rng, &next_id, &ledger);
  EXPECT_EQ(ledger.CountByType(GtErrorType::kMissingTrack), 4u);
}

TEST(LabelerTest, MissedTrackProducesNoLabelsAndLedgerEntry) {
  const GtScene gt = SimpleVisibleWorld(1, 8);
  LabelerProfile profile;
  // An 8-frame track counts as "short visibility", so both rates must be 1
  // for a guaranteed miss.
  profile.missing_track_rate = 1.0;
  profile.short_visibility_miss_rate = 1.0;
  Rng rng(10);
  ObservationId next_id = 1;
  GtLedger ledger;
  const LabelerOutput output =
      GenerateHumanLabels(gt, profile, rng, &next_id, &ledger);
  for (const auto& frame : output.observations) EXPECT_TRUE(frame.empty());
  ASSERT_EQ(ledger.errors.size(), 1u);
  const GtError& error = ledger.errors[0];
  EXPECT_EQ(error.type, GtErrorType::kMissingTrack);
  EXPECT_EQ(error.first_frame, 0);
  EXPECT_EQ(error.last_frame, 7);
  EXPECT_EQ(error.boxes.size(), 8u);
  EXPECT_NEAR(error.min_ego_distance, 10.0, 0.5);
}

TEST(LabelerTest, MissingObsOnlyInteriorFrames) {
  const GtScene gt = SimpleVisibleWorld(1, 20);
  LabelerProfile profile;
  profile.missing_track_rate = 0.0;
  profile.short_visibility_miss_rate = 0.0;
  profile.missing_obs_rate = 1.0;  // drop every interior frame
  Rng rng(11);
  ObservationId next_id = 1;
  GtLedger ledger;
  const LabelerOutput output =
      GenerateHumanLabels(gt, profile, rng, &next_id, &ledger);
  // First and last visible frames are always labeled.
  EXPECT_EQ(output.observations.front().size(), 1u);
  EXPECT_EQ(output.observations.back().size(), 1u);
  EXPECT_EQ(ledger.CountByType(GtErrorType::kMissingObservation), 18u);
}

TEST(LabelerTest, LabelNoiseIsBounded) {
  const GtScene gt = SimpleVisibleWorld(3, 10);
  LabelerProfile profile;
  profile.missing_track_rate = 0.0;
  profile.short_visibility_miss_rate = 0.0;
  profile.center_jitter_m = 0.05;
  Rng rng(12);
  ObservationId next_id = 1;
  GtLedger ledger;
  const LabelerOutput output =
      GenerateHumanLabels(gt, profile, rng, &next_id, &ledger);
  for (int f = 0; f < gt.num_frames; ++f) {
    for (const Observation& obs : output.observations[static_cast<size_t>(f)]) {
      EXPECT_EQ(obs.frame_index, f);
      EXPECT_DOUBLE_EQ(obs.confidence, 1.0);
      EXPECT_EQ(obs.source, ObservationSource::kHuman);
      // Box stays near some ground-truth object.
      double best = 1e9;
      for (const GtObject& object : gt.objects) {
        best = std::min(best, (obs.box.center.Xy() -
                               object.states[static_cast<size_t>(f)].position)
                                  .Norm());
      }
      EXPECT_LT(best, 1.0);
    }
  }
}

TEST(LabelerTest, InvisibleObjectNeitherLabeledNorCharged) {
  GtScene gt = SimpleVisibleWorld(1, 10);
  for (auto& state : gt.objects[0].states) state.visible = false;
  LabelerProfile profile;
  profile.missing_track_rate = 1.0;
  Rng rng(13);
  ObservationId next_id = 1;
  GtLedger ledger;
  const LabelerOutput output =
      GenerateHumanLabels(gt, profile, rng, &next_id, &ledger);
  for (const auto& frame : output.observations) EXPECT_TRUE(frame.empty());
  EXPECT_TRUE(ledger.errors.empty());
}

// -------------------------------------------------------------- Detector

TEST(DetectorTest, PerfectDetectorEmitsNoErrors) {
  const GtScene gt = SimpleVisibleWorld(4, 10);
  DetectorParams params;
  params.base_recall = 1.0;
  params.recall_at_max_range = 1.0;
  params.track_class_confusion_rate = 0.0;
  params.localization_error_rate = 0.0;
  params.ghost_tracks_per_scene = 0.0;
  Rng rng(14);
  ObservationId next_id = 1;
  GtLedger ledger;
  const DetectorOutput output =
      GenerateDetections(gt, params, rng, &next_id, &ledger);
  EXPECT_TRUE(ledger.errors.empty());
  size_t total = 0;
  for (const auto& frame : output.observations) total += frame.size();
  EXPECT_EQ(total, 40u);
}

TEST(DetectorTest, GhostsAreLedgeredAndContiguous) {
  const GtScene gt = SimpleVisibleWorld(0, 30);
  DetectorParams params;
  params.ghost_tracks_per_scene = 10.0;
  Rng rng(15);
  ObservationId next_id = 1;
  GtLedger ledger;
  const DetectorOutput output =
      GenerateDetections(gt, params, rng, &next_id, &ledger);
  const size_t ghosts = ledger.CountByType(GtErrorType::kGhostTrack);
  EXPECT_GT(ghosts, 3u);
  size_t emitted = 0;
  for (const auto& frame : output.observations) emitted += frame.size();
  EXPECT_GT(emitted, 0u);
  for (const GtError& error : ledger.errors) {
    ASSERT_EQ(error.type, GtErrorType::kGhostTrack);
    // Gap-free by construction (so the flicker assertion cannot fire).
    EXPECT_EQ(static_cast<int>(error.boxes.size()),
              error.last_frame - error.first_frame + 1);
    EXPECT_GE(error.last_frame - error.first_frame + 1,
              params.ghost_min_frames);
  }
}

TEST(DetectorTest, ClassConfusionLedgered) {
  const GtScene gt = SimpleVisibleWorld(6, 10);
  DetectorParams params;
  params.base_recall = 1.0;
  params.recall_at_max_range = 1.0;
  params.track_class_confusion_rate = 1.0;  // always confuse
  params.localization_error_rate = 0.0;
  params.ghost_tracks_per_scene = 0.0;
  Rng rng(16);
  ObservationId next_id = 1;
  GtLedger ledger;
  const DetectorOutput output =
      GenerateDetections(gt, params, rng, &next_id, &ledger);
  EXPECT_EQ(ledger.CountByType(GtErrorType::kClassificationError), 6u);
  // Every emitted observation carries a non-car class (cars were input).
  for (const auto& frame : output.observations) {
    for (const Observation& obs : frame) {
      EXPECT_NE(obs.object_class, ObjectClass::kCar);
    }
  }
}

TEST(DetectorTest, CalibratedConfidenceTracksRecall) {
  // Two near objects (x = 10, 18) stay inside the full-recall range, so
  // calibrated confidences cluster at base_recall.
  const GtScene gt = SimpleVisibleWorld(2, 20);
  DetectorParams params;
  params.calibrated = true;
  params.ghost_tracks_per_scene = 0.0;
  params.track_class_confusion_rate = 0.0;
  params.localization_error_rate = 0.0;
  Rng rng(17);
  ObservationId next_id = 1;
  GtLedger ledger;
  const DetectorOutput output =
      GenerateDetections(gt, params, rng, &next_id, &ledger);
  // Near, unoccluded objects: confidence should cluster near base_recall.
  double sum = 0.0;
  size_t count = 0;
  for (const auto& frame : output.observations) {
    for (const Observation& obs : frame) {
      sum += obs.confidence;
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_NEAR(sum / static_cast<double>(count), params.base_recall, 0.05);
}

TEST(DetectorTest, RecallFallsWithDistance) {
  // One object near, one far; detection counts should differ.
  GtScene gt = SimpleVisibleWorld(2, 200);
  for (auto& state : gt.objects[0].states) state.position = {12, 0};
  for (auto& state : gt.objects[1].states) state.position = {70, 0};
  for (auto& object : gt.objects) {
    for (auto& state : object.states) state.visible = true;
  }
  DetectorParams params;
  params.ghost_tracks_per_scene = 0.0;
  Rng rng(18);
  ObservationId next_id = 1;
  GtLedger ledger;
  const DetectorOutput output =
      GenerateDetections(gt, params, rng, &next_id, &ledger);
  int near = 0;
  int far = 0;
  for (const auto& frame : output.observations) {
    for (const Observation& obs : frame) {
      if (obs.box.center.x < 40) {
        ++near;
      } else {
        ++far;
      }
    }
  }
  EXPECT_GT(near, far + 20);
}

// -------------------------------------------------------------- Profiles

TEST(ProfilesTest, LyftIsNoisierThanInternal) {
  const SimProfile lyft = LyftLikeProfile();
  const SimProfile internal = InternalLikeProfile();
  EXPECT_GT(lyft.labeler.missing_track_rate,
            internal.labeler.missing_track_rate);
  EXPECT_GT(lyft.detector.ghost_tracks_per_scene,
            internal.detector.ghost_tracks_per_scene);
  EXPECT_FALSE(lyft.detector.calibrated);
  EXPECT_TRUE(internal.detector.calibrated);
  // Different sampling rates (Section 8.1).
  EXPECT_NE(lyft.world.frame_rate_hz, internal.world.frame_rate_hz);
}

// -------------------------------------------------------------- Generate

TEST(GenerateTest, SceneIsValidAndLabeled) {
  const GeneratedScene generated =
      GenerateScene(LyftLikeProfile(), "g", 123);
  EXPECT_TRUE(generated.scene.Validate().ok());
  EXPECT_GT(generated.scene.CountBySource(ObservationSource::kHuman), 0u);
  EXPECT_GT(generated.scene.CountBySource(ObservationSource::kModel), 0u);
  EXPECT_EQ(generated.scene.frame_count(),
            static_cast<size_t>(generated.ground_truth.num_frames));
}

TEST(GenerateTest, DeterministicForSameSeed) {
  const GeneratedScene a = GenerateScene(LyftLikeProfile(), "g", 5);
  const GeneratedScene b = GenerateScene(LyftLikeProfile(), "g", 5);
  EXPECT_EQ(a.scene.TotalObservations(), b.scene.TotalObservations());
  ASSERT_EQ(a.ledger.errors.size(), b.ledger.errors.size());
  for (size_t i = 0; i < a.ledger.errors.size(); ++i) {
    EXPECT_EQ(a.ledger.errors[i].type, b.ledger.errors[i].type);
    EXPECT_EQ(a.ledger.errors[i].object_key, b.ledger.errors[i].object_key);
  }
}

TEST(GenerateTest, DifferentSeedsDiffer) {
  const GeneratedScene a = GenerateScene(LyftLikeProfile(), "g", 1);
  const GeneratedScene b = GenerateScene(LyftLikeProfile(), "g", 2);
  EXPECT_NE(a.scene.TotalObservations(), b.scene.TotalObservations());
}

TEST(GenerateTest, SceneNameFeedsSeed) {
  const GeneratedScene a = GenerateScene(LyftLikeProfile(), "a", 1);
  const GeneratedScene b = GenerateScene(LyftLikeProfile(), "b", 1);
  EXPECT_NE(a.scene.TotalObservations(), b.scene.TotalObservations());
}

TEST(GenerateTest, ExactMissingTracksPropagates) {
  SceneGenOptions options;
  options.exact_missing_tracks = 10;
  const GeneratedScene generated =
      GenerateScene(InternalLikeProfile(), "audit", 77, options);
  EXPECT_EQ(generated.ledger.CountByType(GtErrorType::kMissingTrack), 10u);
}

TEST(GenerateTest, DatasetAggregatesLedger) {
  const GeneratedDataset dataset =
      GenerateDataset(LyftLikeProfile(), "ds", 3, 9);
  EXPECT_EQ(dataset.dataset.scenes.size(), 3u);
  std::set<std::string> names;
  for (const GtError& error : dataset.ledger.errors) {
    names.insert(error.scene_name);
  }
  // Errors come from the generated scenes only.
  for (const std::string& name : names) {
    EXPECT_TRUE(name.find("ds_") == 0) << name;
  }
  EXPECT_EQ(dataset.ledger.ErrorsInScene("ds_0").size(),
            dataset.ledger.errors.size() -
                dataset.ledger.ErrorsInScene("ds_1").size() -
                dataset.ledger.ErrorsInScene("ds_2").size());
}

TEST(LedgerTest, CountsAndToString) {
  GtLedger ledger;
  GtError e1;
  e1.type = GtErrorType::kMissingTrack;
  e1.scene_name = "s1";
  GtError e2;
  e2.type = GtErrorType::kGhostTrack;
  e2.scene_name = "s2";
  ledger.errors = {e1, e2};
  EXPECT_EQ(ledger.CountByType(GtErrorType::kMissingTrack), 1u);
  EXPECT_EQ(ledger.CountByTypeInScene(GtErrorType::kMissingTrack, "s1"), 1u);
  EXPECT_EQ(ledger.CountByTypeInScene(GtErrorType::kMissingTrack, "s2"), 0u);
  EXPECT_NE(e1.ToString().find("missing_track"), std::string::npos);
  EXPECT_NE(e2.ToString().find("ghost_track"), std::string::npos);
}

}  // namespace
}  // namespace fixy::sim
