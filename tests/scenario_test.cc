// Tests for the scenario module: the strict spec validator, the preset
// registry (including the frozen legacy-profile contract), deterministic
// materialization (JSON + FXB), the ground-truth ledger round-trip, and
// the sweep harness with its metrics-diff reports.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "eval/cell_diff.h"
#include "io/fxb.h"
#include "io/scene_io.h"
#include "json/json.h"
#include "scenario/ledger_io.h"
#include "scenario/materialize.h"
#include "scenario/presets.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "sim/generate.h"
#include "sim/profiles.h"

namespace fixy::scenario {
namespace {

std::string TempDir() {
  static int counter = 0;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("fixy_scenario_test_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

/// Parses `text` and expects rejection with `needle` somewhere in the
/// error message (the validator names the offending path).
void ExpectRejected(const std::string& text, const std::string& needle) {
  const Result<ScenarioSpec> spec = ScenarioFromString(text);
  ASSERT_FALSE(spec.ok()) << "accepted: " << text;
  EXPECT_NE(spec.status().message().find(needle), std::string::npos)
      << "error for " << text << " was: " << spec.status().message();
}

// ---------------------------------------------------------------------
// Validator: shape and root fields.

TEST(SpecValidator, MinimalSpecParsesWithDefaults) {
  const Result<ScenarioSpec> spec = ScenarioFromString(R"({"name": "t"})");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "t");
  EXPECT_EQ(spec->scene_count, 4);
  EXPECT_EQ(spec->seed, 42u);
}

TEST(SpecValidator, RejectsNonObjectDocuments) {
  ExpectRejected("5", "expected an object");
  ExpectRejected("[]", "expected an object");
}

TEST(SpecValidator, RejectsUnknownFormatAndVersion) {
  ExpectRejected(R"({"format": "nope", "name": "t"})", "fixy-scenario");
  ExpectRejected(R"({"version": 2, "name": "t"})", "unsupported version 2");
}

TEST(SpecValidator, RequiresAValidName) {
  ExpectRejected(R"({})", "scenario.name is required");
  ExpectRejected(R"({"name": ""})", "non-empty");
  ExpectRejected(R"({"name": "bad/name"})", "[A-Za-z0-9._-]");
  ExpectRejected(R"({"name": 7})", "expected a string");
}

TEST(SpecValidator, RejectsUnknownRootFieldListingValidOnes) {
  const Result<ScenarioSpec> spec =
      ScenarioFromString(R"({"name": "t", "wrold": {}})");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("unknown field \"wrold\""),
            std::string::npos)
      << spec.status().message();
  EXPECT_NE(spec.status().message().find("valid fields:"), std::string::npos);
  EXPECT_NE(spec.status().message().find("world"), std::string::npos);
}

TEST(SpecValidator, RejectsBadSceneCountAndSeed) {
  ExpectRejected(R"({"name": "t", "scenes": 0})", "scenario.scenes");
  ExpectRejected(R"({"name": "t", "scenes": 2.5})", "expected an integer");
  ExpectRejected(R"({"name": "t", "seed": -1})", "scenario.seed");
}

// ---------------------------------------------------------------------
// Validator: one rejection per section family, each naming its path.

TEST(SpecValidator, WorldFamilyRejections) {
  ExpectRejected(R"({"name": "t", "world": {"duration_seconds": 0.0}})",
                 "scenario.world.duration_seconds");
  ExpectRejected(R"({"name": "t", "world": {"frame_rate_hz": 500}})",
                 "out of range");
  ExpectRejected(R"({"name": "t", "world": {"gravity": 9.8}})",
                 "unknown field \"gravity\"");
  ExpectRejected(
      R"({"name": "t", "world": {"class_mix": {"car": -1.0}}})",
      "scenario.world.class_mix.car");
  ExpectRejected(
      R"({"name": "t", "world": {"class_mix": {"bicycle": 1.0}}})",
      "unknown field \"bicycle\"");
}

TEST(SpecValidator, SensorFamilyRejections) {
  ExpectRejected(
      R"({"name": "t", "sensor": {"occlusion_visibility_threshold": 1.5}})",
      "scenario.sensor.occlusion_visibility_threshold");
  ExpectRejected(R"({"name": "t", "sensor": {"dropout_windows": 3}})",
                 "expected an array");
  ExpectRejected(
      R"({"name": "t", "sensor": {"dropout_windows":
          [{"start_seconds": 5.0, "end_seconds": 2.0}]}})",
      "greater than start_seconds");
  ExpectRejected(
      R"({"name": "t", "sensor": {"dropout_windows":
          [{"start_seconds": 1.0, "end_seconds": 2.0, "sensor_id": 4}]}})",
      "unknown field \"sensor_id\"");
}

TEST(SpecValidator, LabelerFamilyRejections) {
  ExpectRejected(
      R"({"name": "t", "labeler": {"missing_track_rate": -0.1}})",
      "scenario.labeler.missing_track_rate");
  ExpectRejected(R"({"name": "t", "labeler": {"fatigue": 0.5}})",
                 "unknown field \"fatigue\"");
}

TEST(SpecValidator, DetectorFamilyRejections) {
  const Result<ScenarioSpec> spec = ScenarioFromString(
      R"({"name": "t", "detector": {"calibration": "sometimes"}})");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(
      spec.status().message().find("unknown value \"sometimes\""),
      std::string::npos)
      << spec.status().message();
  EXPECT_NE(spec.status().message().find("calibrated, uncalibrated"),
            std::string::npos);
  ExpectRejected(R"({"name": "t", "detector": {"base_recall": 2.0}})",
                 "scenario.detector.base_recall");
  ExpectRejected(R"({"name": "t", "detector": {"flux": 1.0}})",
                 "unknown field \"flux\"");
}

// ---------------------------------------------------------------------
// Validator: cross-field constraints caught by the compile step.

TEST(SpecValidator, RejectsAllZeroClassMix) {
  ExpectRejected(
      R"({"name": "t", "world": {"class_mix":
          {"car": 0, "truck": 0, "pedestrian": 0, "motorcycle": 0}}})",
      "class_mix");
}

TEST(SpecValidator, RejectsDropoutWindowBeyondDuration) {
  ExpectRejected(
      R"({"name": "t", "world": {"duration_seconds": 5.0},
          "sensor": {"dropout_windows":
              [{"start_seconds": 10.0, "end_seconds": 12.0}]}})",
      "duration");
}

TEST(SpecValidator, RejectsGhostFrameSpanInversion) {
  ExpectRejected(
      R"({"name": "t", "detector":
          {"ghost_min_frames": 9, "ghost_max_frames": 3}})",
      "ghost_max_frames");
}

// ---------------------------------------------------------------------
// Round-trips.

TEST(SpecRoundTrip, ToJsonFromJsonIsIdentity) {
  for (const std::string& name : PresetNames()) {
    const Result<ScenarioSpec> preset = PresetByName(name);
    ASSERT_TRUE(preset.ok()) << preset.status();
    const json::Value encoded = ScenarioToJson(*preset);
    const Result<ScenarioSpec> decoded = ScenarioFromJson(encoded);
    ASSERT_TRUE(decoded.ok()) << name << ": " << decoded.status();
    EXPECT_EQ(ScenarioFingerprint(*preset), ScenarioFingerprint(*decoded))
        << name;
    EXPECT_EQ(json::Write(encoded), json::Write(ScenarioToJson(*decoded)))
        << name;
  }
}

TEST(SpecRoundTrip, LoadScenarioNamesTheFileInErrors) {
  const std::string dir = TempDir();
  const std::string path = dir + "/bad.json";
  std::ofstream(path) << R"({"name": "t", "scenes": 0})";
  const Result<ScenarioSpec> spec = LoadScenario(path);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find(path), std::string::npos);
  EXPECT_FALSE(LoadScenario(dir + "/absent.json").ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Presets.

TEST(Presets, RegistryOrderAndLookup) {
  const std::vector<std::string> names = PresetNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "lyft-like");
  EXPECT_EQ(names[1], "internal-like");
  EXPECT_EQ(names[2], "dense-urban-intersection");
  EXPECT_EQ(names[3], "highway-convoy");
  EXPECT_EQ(names[4], "parking-lot");
  EXPECT_EQ(names[5], "night-low-recall");
  EXPECT_EQ(names[6], "multi-sensor-disagreement");
  EXPECT_EQ(PresetDescriptions().size(), names.size());

  const Result<ScenarioSpec> unknown = PresetByName("nope");
  ASSERT_FALSE(unknown.ok());
  for (const std::string& name : names) {
    EXPECT_NE(unknown.status().message().find(name), std::string::npos);
  }
}

TEST(Presets, EveryPresetCompiles) {
  for (const std::string& name : PresetNames()) {
    const Result<ScenarioSpec> preset = PresetByName(name);
    ASSERT_TRUE(preset.ok()) << name;
    const Result<sim::SimProfile> profile = CompileScenario(*preset);
    EXPECT_TRUE(profile.ok()) << name << ": " << profile.status();
  }
}

// The legacy profile functions are now thin wrappers over the registry;
// datasets generated through either path must stay byte-identical. This
// is the frozen contract of the old hard-coded sim/profiles.cc.
void ExpectLegacyParity(const sim::SimProfile& legacy,
                        const std::string& preset_name) {
  const Result<ScenarioSpec> preset = PresetByName(preset_name);
  ASSERT_TRUE(preset.ok()) << preset.status();
  const sim::GeneratedDataset old_path =
      sim::GenerateDataset(legacy, legacy.name, 2, 42);
  const Result<sim::GeneratedDataset> new_path =
      GenerateScenarioDataset(*preset, 2, 42);
  ASSERT_TRUE(new_path.ok()) << new_path.status();

  ASSERT_EQ(old_path.dataset.scenes.size(), new_path->dataset.scenes.size());
  for (size_t i = 0; i < old_path.dataset.scenes.size(); ++i) {
    EXPECT_EQ(io::SceneToString(old_path.dataset.scenes[i]),
              io::SceneToString(new_path->dataset.scenes[i]))
        << preset_name << " scene " << i;
  }
  EXPECT_EQ(json::Write(LedgerToJson(old_path.ledger)),
            json::Write(LedgerToJson(new_path->ledger)))
      << preset_name;
}

TEST(Presets, LyftLikeMatchesLegacyProfile) {
  ExpectLegacyParity(sim::LyftLikeProfile(), "lyft-like");
}

TEST(Presets, InternalLikeMatchesLegacyProfile) {
  ExpectLegacyParity(sim::InternalLikeProfile(), "internal-like");
}

// ---------------------------------------------------------------------
// Materialization and determinism.

ScenarioSpec TinySpec(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.scene_count = 2;
  spec.world.duration_seconds = 6.0;
  spec.world.frame_rate_hz = 5.0;
  spec.world.mean_object_count = 12.0;
  return spec;
}

TEST(Materialize, RepeatedGenerationIsByteIdentical) {
  const ScenarioSpec spec = TinySpec("det");
  const Result<sim::GeneratedDataset> a = GenerateScenarioDataset(spec);
  const Result<sim::GeneratedDataset> b = GenerateScenarioDataset(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->dataset.scenes.size(), 2u);
  for (size_t i = 0; i < a->dataset.scenes.size(); ++i) {
    EXPECT_EQ(io::SceneToString(a->dataset.scenes[i]),
              io::SceneToString(b->dataset.scenes[i]));
  }
  EXPECT_EQ(json::Write(LedgerToJson(a->ledger)),
            json::Write(LedgerToJson(b->ledger)));
}

TEST(Materialize, WritesLoadsAndReuses) {
  const std::string dir = TempDir();
  const ScenarioSpec spec = TinySpec("mat");
  MaterializeOptions options;
  const Result<MaterializedDataset> first =
      MaterializeScenarioDataset(spec, dir, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->reused);
  EXPECT_EQ(first->scenes_generated, 2);
  EXPECT_TRUE(std::filesystem::exists(ScenarioLockPath(dir)));
  EXPECT_TRUE(std::filesystem::exists(LedgerPath(dir)));
  EXPECT_TRUE(std::filesystem::exists(io::FxbCachePath(dir)));

  options.reuse = true;
  const Result<MaterializedDataset> second =
      MaterializeScenarioDataset(spec, dir, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->reused);
  EXPECT_EQ(second->scenes_generated, 0);
  ASSERT_EQ(second->data.dataset.scenes.size(),
            first->data.dataset.scenes.size());
  for (size_t i = 0; i < first->data.dataset.scenes.size(); ++i) {
    EXPECT_EQ(io::SceneToString(first->data.dataset.scenes[i]),
              io::SceneToString(second->data.dataset.scenes[i]));
  }

  // A different recipe must not reuse the stale directory.
  options.seed = 7;
  const Result<MaterializedDataset> reseeded =
      MaterializeScenarioDataset(spec, dir, options);
  ASSERT_TRUE(reseeded.ok()) << reseeded.status();
  EXPECT_FALSE(reseeded->reused);
  std::filesystem::remove_all(dir);
}

TEST(Materialize, DirectFxbMatchesJsonRebuild) {
  const std::string dir = TempDir();
  const Result<MaterializedDataset> made =
      MaterializeScenarioDataset(TinySpec("fxb"), dir);
  ASSERT_TRUE(made.ok()) << made.status();

  std::string direct;
  ASSERT_TRUE(io::ReadFileInto(io::FxbCachePath(dir), &direct).ok());
  std::filesystem::remove(io::FxbCachePath(dir));
  const Result<size_t> rebuilt = io::BuildFxbCache(dir);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  std::string reparsed;
  ASSERT_TRUE(io::ReadFileInto(io::FxbCachePath(dir), &reparsed).ok());
  // Same sources, same mtimes: the in-memory encode and the JSON re-parse
  // encode must agree on every byte.
  EXPECT_EQ(direct, reparsed);
  std::filesystem::remove_all(dir);
}

TEST(Materialize, FxbSceneSectionsIdenticalAcrossDirectories) {
  // Whole-blob comparison across directories is invalid (source records
  // embed real file mtimes); the scene sections themselves must match.
  const std::string dir_a = TempDir();
  const std::string dir_b = TempDir();
  const ScenarioSpec spec = TinySpec("sections");
  ASSERT_TRUE(MaterializeScenarioDataset(spec, dir_a).ok());
  ASSERT_TRUE(MaterializeScenarioDataset(spec, dir_b).ok());
  const Result<io::FxbReader> a = io::OpenFreshCache(dir_a);
  const Result<io::FxbReader> b = io::OpenFreshCache(dir_b);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->scene_count(), b->scene_count());
  for (size_t i = 0; i < a->scene_count(); ++i) {
    const Result<std::string> sa = a->SceneSectionBytes(i);
    const Result<std::string> sb = b->SceneSectionBytes(i);
    ASSERT_TRUE(sa.ok() && sb.ok());
    EXPECT_EQ(*sa, *sb) << "scene section " << i;
  }
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(DropoutWindows, SuppressObservationsDuringTheWindow) {
  ScenarioSpec open = TinySpec("dropout");
  ScenarioSpec blocked = open;
  sim::SensorDropoutWindow window;
  window.start_seconds = 0.0;
  window.end_seconds = open.world.duration_seconds;
  blocked.sensor.dropout_windows.push_back(window);

  const Result<sim::GeneratedDataset> with = GenerateScenarioDataset(open);
  const Result<sim::GeneratedDataset> without =
      GenerateScenarioDataset(blocked);
  ASSERT_TRUE(with.ok() && without.ok());
  // Nothing is ever visible, so neither the labeler nor the detector can
  // emit object observations.
  EXPECT_GT(with->dataset.TotalObservations(),
            10 * without->dataset.TotalObservations());
}

// ---------------------------------------------------------------------
// Ledger IO.

TEST(LedgerIo, RoundTripsThroughDisk) {
  const std::string dir = TempDir();
  const Result<sim::GeneratedDataset> data =
      GenerateScenarioDataset(TinySpec("ledger"));
  ASSERT_TRUE(data.ok());
  ASSERT_FALSE(data->ledger.errors.empty());
  const std::string path = LedgerPath(dir);
  ASSERT_TRUE(SaveLedger(data->ledger, path).ok());
  const Result<sim::GtLedger> loaded = LoadLedger(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(json::Write(LedgerToJson(data->ledger)),
            json::Write(LedgerToJson(*loaded)));
  std::filesystem::remove_all(dir);
}

TEST(LedgerIo, RejectsMalformedDocuments) {
  EXPECT_FALSE(LedgerFromJson(json::Value(3.0)).ok());
  json::Object bogus;
  bogus["format"] = "fixy-gt-ledger";
  bogus["version"] = 1;
  bogus["errors"] = "not an array";
  EXPECT_FALSE(LedgerFromJson(json::Value(std::move(bogus))).ok());
}

// ---------------------------------------------------------------------
// Sweep.

SweepOptions TinySweepOptions() {
  SweepOptions options;
  options.apps = {"missing-tracks", "model-errors"};
  options.top_k = 5;
  return options;
}

TEST(Sweep, GridIsDeterministicAcrossThreadCounts) {
  const std::vector<ScenarioSpec> specs = {TinySpec("a"), TinySpec("b")};
  SweepOptions options = TinySweepOptions();
  options.threads = 1;
  const Result<SweepReport> serial = RunSweep(specs, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  options.threads = 4;
  const Result<SweepReport> parallel = RunSweep(specs, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_EQ(json::Write(SweepReportToJson(*serial)),
            json::Write(SweepReportToJson(*parallel)));

  // Scenario-major, application-minor cell order.
  ASSERT_EQ(serial->cells.size(), 4u);
  EXPECT_EQ(serial->cells[0].scenario, "a");
  EXPECT_EQ(serial->cells[0].app, "missing-tracks");
  EXPECT_EQ(serial->cells[1].scenario, "a");
  EXPECT_EQ(serial->cells[1].app, "model-errors");
  EXPECT_EQ(serial->cells[2].scenario, "b");
  EXPECT_EQ(serial->cells[3].scenario, "b");
  for (const SweepCell& cell : serial->cells) {
    EXPECT_EQ(cell.scenes, 2u);
    EXPECT_GT(cell.proposals, 0u);
  }
  const std::string table = FormatSweepTable(*serial);
  EXPECT_NE(table.find("missing-tracks"), std::string::npos);
  EXPECT_NE(table.find("p@5"), std::string::npos);
}

TEST(Sweep, CacheDirectoryReusesMaterializedDatasets) {
  const std::string dir = TempDir();
  const std::vector<ScenarioSpec> specs = {TinySpec("cached")};
  SweepOptions options = TinySweepOptions();
  options.cache_dir = dir;
  const Result<SweepReport> first = RunSweep(specs, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(
      std::filesystem::exists(ScenarioLockPath(dir + "/cached")));
  const Result<SweepReport> second = RunSweep(specs, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(json::Write(SweepReportToJson(*first)),
            json::Write(SweepReportToJson(*second)));
  std::filesystem::remove_all(dir);
}

TEST(Sweep, ReportRoundTripsThroughJsonAndDisk) {
  const std::vector<ScenarioSpec> specs = {TinySpec("rt")};
  const Result<SweepReport> report = RunSweep(specs, TinySweepOptions());
  ASSERT_TRUE(report.ok()) << report.status();

  const Result<SweepReport> decoded =
      SweepReportFromJson(SweepReportToJson(*report));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(json::Write(SweepReportToJson(*report)),
            json::Write(SweepReportToJson(*decoded)));

  const std::string dir = TempDir();
  const std::string path = dir + "/report.json";
  ASSERT_TRUE(SaveSweepReport(*report, path).ok());
  const Result<SweepReport> loaded = LoadSweepReport(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(json::Write(SweepReportToJson(*report)),
            json::Write(SweepReportToJson(*loaded)));
  std::filesystem::remove_all(dir);
}

TEST(Sweep, ReportParserRejectsMalformedDocuments) {
  EXPECT_FALSE(SweepReportFromJson(json::Value(1.0)).ok());
  json::Object wrong_format;
  wrong_format["format"] = "fixy-metrics";
  EXPECT_FALSE(SweepReportFromJson(json::Value(wrong_format)).ok());
  json::Object bad_cells;
  bad_cells["format"] = "fixy-sweep";
  bad_cells["version"] = 1;
  bad_cells["scenarios"] = json::Array{};
  bad_cells["apps"] = json::Array{};
  bad_cells["top_k"] = 10;
  bad_cells["cells"] = "nope";
  EXPECT_FALSE(SweepReportFromJson(json::Value(bad_cells)).ok());
}

TEST(Sweep, RejectsDegenerateGrids) {
  EXPECT_FALSE(RunSweep({}, TinySweepOptions()).ok());
  SweepOptions no_apps = TinySweepOptions();
  no_apps.apps.clear();
  EXPECT_FALSE(RunSweep({TinySpec("x")}, no_apps).ok());
  SweepOptions zero_k = TinySweepOptions();
  zero_k.top_k = 0;
  EXPECT_FALSE(RunSweep({TinySpec("x")}, zero_k).ok());
  const Status dup =
      RunSweep({TinySpec("x"), TinySpec("x")}, TinySweepOptions()).status();
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.message().find("duplicate scenario"), std::string::npos);
}

TEST(Sweep, DiffFlagsRegressionsAndRowChurn) {
  const std::vector<ScenarioSpec> specs = {TinySpec("d1"), TinySpec("d2")};
  const Result<SweepReport> base = RunSweep(specs, TinySweepOptions());
  ASSERT_TRUE(base.ok()) << base.status();

  EXPECT_TRUE(DiffSweepReports(*base, *base).Empty());

  SweepReport current = *base;
  current.cells[0].precision_at_k -= 0.25;  // quality drop -> REGRESSED
  current.cells[1].proposals += 5;          // count change -> changed only
  current.cells.pop_back();                 // removed row
  SweepCell added;
  added.scenario = "d9";
  added.app = "missing-tracks";
  current.cells.push_back(added);

  const eval::CellDiffReport diff = DiffSweepReports(*base, current);
  EXPECT_TRUE(diff.HasRegression());
  ASSERT_EQ(diff.added_rows.size(), 1u);
  EXPECT_EQ(diff.added_rows[0], "d9/missing-tracks");
  ASSERT_EQ(diff.removed_rows.size(), 1u);
  bool saw_precision = false;
  bool saw_proposals_as_plain_change = false;
  for (const eval::CellChange& change : diff.changes) {
    if (change.metric == "precision_at_k" && change.regressed) {
      saw_precision = true;
    }
    if (change.metric == "proposals") {
      EXPECT_FALSE(change.regressed);
      saw_proposals_as_plain_change = true;
    }
  }
  EXPECT_TRUE(saw_precision);
  EXPECT_TRUE(saw_proposals_as_plain_change);

  const std::string formatted = eval::FormatCellDiff(diff);
  EXPECT_NE(formatted.find("REGRESSED"), std::string::npos);
  EXPECT_NE(formatted.find("ADDED   d9/missing-tracks"), std::string::npos);
}

TEST(CellDiff, ToleranceSuppressesNoiseAndDirectionIsHonored) {
  eval::MetricCell base_cell;
  base_cell.row = "r";
  base_cell.values = {{"precision", 0.5}, {"count", 10.0}};
  eval::MetricCell current_cell;
  current_cell.row = "r";
  current_cell.values = {{"precision", 0.5 + 1e-12}, {"count", 3.0}};
  eval::CellDiffOptions options;
  options.higher_is_better = {"precision"};
  const eval::CellDiffReport diff =
      eval::DiffMetricCells({base_cell}, {current_cell}, options);
  // The 1e-12 precision wiggle is under tolerance; the count drop is a
  // change but not a regression (no declared direction).
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].metric, "count");
  EXPECT_FALSE(diff.changes[0].regressed);
  EXPECT_FALSE(diff.HasRegression());
}

}  // namespace
}  // namespace fixy::scenario
