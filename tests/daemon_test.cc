// Tests for fixyd (src/daemon): the request/response protocol codecs,
// byte-identity between daemon rank responses and the direct engine
// pipeline, concurrent clients, admission control (queue overload and
// per-request deadlines), frame-corruption resilience (a seeded
// DocumentCorruptor-style sweep over truncation, CRC flips, bad type
// bytes, and oversized lengths), stale-socket recovery, and graceful
// shutdown semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FIXY_DAEMON_TEST_HAVE_SOCKETS 1
#endif

#include "common/macros.h"
#include "core/engine.h"
#include "core/proposal_io.h"
#include "core/ranker.h"
#include "io/fxb.h"
#include "daemon/client.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "io/scene_io.h"
#include "json/json.h"
#include "shard/wire.h"
#include "sim/generate.h"

namespace fixy::daemon {
namespace {

// ------------------------------------------------------------- protocol

TEST(DaemonProtocolTest, RequestRoundTrip) {
  Request request;
  request.id = 42;
  request.kind = RequestKind::kRank;
  request.data_dir = "/data/scenes";
  request.scene_index = 3;
  request.scene = "scene_003";
  request.apps = {"model-errors", "missing-obs"};
  request.top = 7;
  request.deadline_ms = 250;
  request.model_out = "/tmp/model.json";

  const Result<Request> round = RequestFromJson(RequestToJson(request));
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->id, request.id);
  EXPECT_EQ(round->kind, request.kind);
  EXPECT_EQ(round->data_dir, request.data_dir);
  EXPECT_EQ(round->scene_index, request.scene_index);
  EXPECT_EQ(round->scene, request.scene);
  EXPECT_EQ(round->apps, request.apps);
  EXPECT_EQ(round->top, request.top);
  EXPECT_EQ(round->deadline_ms, request.deadline_ms);
  EXPECT_EQ(round->model_out, request.model_out);
}

TEST(DaemonProtocolTest, ResponseRoundTripIncludingErrorStatus) {
  Response response;
  response.id = 9;
  response.status = Status::Unavailable("queue full");
  json::Object result;
  result["scenes"] = json::Value(static_cast<uint64_t>(12));
  response.result = json::Value(std::move(result));

  const Result<Response> round = ResponseFromJson(ResponseToJson(response));
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->id, response.id);
  EXPECT_EQ(round->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(round->status.message(), "queue full");
  EXPECT_EQ(round->result.AsObject().at("scenes").AsDouble(), 12.0);
}

TEST(DaemonProtocolTest, EveryRequestKindRoundTripsByName) {
  for (const RequestKind kind :
       {RequestKind::kRank, RequestKind::kRankDataset, RequestKind::kLearn,
        RequestKind::kStatus, RequestKind::kShutdown}) {
    const Result<RequestKind> round =
        RequestKindFromString(RequestKindToString(kind));
    ASSERT_TRUE(round.ok()) << round.status();
    EXPECT_EQ(*round, kind);
  }
  EXPECT_FALSE(RequestKindFromString("reboot").ok());
}

TEST(DaemonProtocolTest, RequestFromJsonRejectsHostileInput) {
  // Not an object.
  EXPECT_FALSE(RequestFromJson(json::Value(3.0)).ok());
  // Missing kind.
  EXPECT_FALSE(RequestFromJson(json::Value(json::Object{})).ok());
  // Unknown kind.
  json::Object bad_kind;
  bad_kind["kind"] = json::Value(std::string("explode"));
  EXPECT_FALSE(RequestFromJson(json::Value(std::move(bad_kind))).ok());
  // Wrong type for apps.
  json::Object bad_apps;
  bad_apps["kind"] = json::Value(std::string("status"));
  bad_apps["apps"] = json::Value(std::string("model-errors"));
  EXPECT_FALSE(RequestFromJson(json::Value(std::move(bad_apps))).ok());
}

#if defined(FIXY_DAEMON_TEST_HAVE_SOCKETS)

// -------------------------------------------------------------- fixture

// One dataset + learned model per suite; every test starts its own
// daemon on its own socket path. Reference proposal strings are computed
// with the direct engine pipeline (DirectorySceneSource, one thread) —
// the daemon's responses must match them byte for byte.
class DaemonTest : public ::testing::Test {
 protected:
  static constexpr size_t kScenes = 5;
  static constexpr int kTop = 10;

  static void SetUpTestSuite() {
    namespace fs = std::filesystem;
    base_dir_ = new std::string(
        (fs::temp_directory_path() /
         ("fixy_daemon_test_" + std::to_string(::getpid())))
            .string());
    fs::remove_all(*base_dir_);
    fs::create_directories(*base_dir_);
    data_dir_ = new std::string(*base_dir_ + "/data");
    train_dir_ = new std::string(*base_dir_ + "/train");
    model_path_ = new std::string(*base_dir_ + "/model.fxm");

    sim::SimProfile profile = sim::LyftLikeProfile();
    profile.world.duration_seconds = 2.0;
    profile.world.mean_object_count = 6.0;
    const sim::GeneratedDataset training =
        sim::GenerateDataset(profile, "daemon_train", 3, 571);
    Fixy trainer;
    ASSERT_TRUE(trainer.Learn(training.dataset).ok());
    ASSERT_TRUE(trainer.SaveModel(*model_path_).ok());
    ASSERT_TRUE(io::SaveDataset(training.dataset, *train_dir_).ok());

    const sim::GeneratedDataset ranking =
        sim::GenerateDataset(profile, "daemon_rank", kScenes, 229);
    ASSERT_TRUE(io::SaveDataset(ranking.dataset, *data_dir_).ok());
    scene0_name_ = new std::string(ranking.dataset.scenes.front().name());

    // Reference: the one-shot pipeline the CLI runs — every registered
    // application, one pass, per-scene top-k, pretty-printed proposal
    // documents.
    Fixy ranker;
    ASSERT_TRUE(ranker.LoadModel(*model_path_).ok());
    apps_ = new std::vector<std::string>(ranker.applications().names());
    auto source = io::DirectorySceneSource::Open(*data_dir_);
    ASSERT_TRUE(source.ok()) << source.status();
    BatchOptions batch;
    batch.num_threads = 1;
    const Result<MultiAppReport> report =
        ranker.RankDatasetStreaming(*source, *apps_, batch);
    ASSERT_TRUE(report.ok()) << report.status();
    expected_ = new std::map<std::string, std::string>();
    scene0_expected_ = new std::map<std::string, std::string>();
    for (size_t a = 0; a < report->apps.size(); ++a) {
      std::vector<ErrorProposal> all;
      for (const SceneOutcome& outcome : report->reports[a].outcomes) {
        ASSERT_TRUE(outcome.ok()) << outcome.status;
        const std::vector<ErrorProposal> top =
            TopK(outcome.proposals, static_cast<size_t>(kTop));
        all.insert(all.end(), top.begin(), top.end());
      }
      (*expected_)[report->apps[a]] =
          json::Write(ProposalsToJson(all), /*pretty=*/true);
      (*scene0_expected_)[report->apps[a]] = json::Write(
          ProposalsToJson(TopK(report->reports[a].outcomes.front().proposals,
                               static_cast<size_t>(kTop))),
          /*pretty=*/true);
    }
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*base_dir_);
    delete base_dir_;
    delete data_dir_;
    delete train_dir_;
    delete model_path_;
    delete scene0_name_;
    delete apps_;
    delete expected_;
    delete scene0_expected_;
    base_dir_ = data_dir_ = train_dir_ = model_path_ = scene0_name_ = nullptr;
    apps_ = nullptr;
    expected_ = scene0_expected_ = nullptr;
  }

  // A daemon running on its own thread. Stop() (or the destructor)
  // requests a drain and joins; tests that shut the daemon down through
  // the protocol just Join().
  class ServerRunner {
   public:
    explicit ServerRunner(ServerOptions options) {
      Result<std::unique_ptr<FixydServer>> created =
          FixydServer::Create(std::move(options));
      if (!created.ok()) {
        create_status_ = created.status();
        return;
      }
      server_ = std::move(*created);
      thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
    }
    ~ServerRunner() { Stop(); }

    bool ok() const { return server_ != nullptr; }
    const Status& create_status() const { return create_status_; }
    FixydServer& server() { return *server_; }

    void Stop() {
      if (!thread_.joinable()) return;
      server_->RequestStop();
      thread_.join();
    }
    void Join() {
      if (thread_.joinable()) thread_.join();
    }
    const Status& serve_status() const { return serve_status_; }

   private:
    Status create_status_;
    Status serve_status_;
    std::unique_ptr<FixydServer> server_;
    std::thread thread_;
  };

  std::string SocketPath(const std::string& tag) {
    return *base_dir_ + "/" + tag + ".sock";
  }

  static ServerOptions BaseOptions(const std::string& socket_path) {
    ServerOptions options;
    options.socket_path = socket_path;
    options.model_path = *model_path_;
    options.worker_threads = 2;
    options.rank_threads = 1;
    return options;
  }

  static Result<Response> Call(const std::string& socket_path,
                               const Request& request) {
    FIXY_ASSIGN_OR_RETURN(FixydClient client, FixydClient::Connect(socket_path));
    return client.Call(request);
  }

  static Request RankDatasetRequest() {
    Request request;
    request.kind = RequestKind::kRankDataset;
    request.data_dir = *data_dir_;
    request.top = kTop;
    return request;
  }

  static std::string* base_dir_;
  static std::string* data_dir_;
  static std::string* train_dir_;
  static std::string* model_path_;
  static std::string* scene0_name_;
  static std::vector<std::string>* apps_;
  // app -> pretty proposal document, whole dataset / scene 0 only.
  static std::map<std::string, std::string>* expected_;
  static std::map<std::string, std::string>* scene0_expected_;
};

std::string* DaemonTest::base_dir_ = nullptr;
std::string* DaemonTest::data_dir_ = nullptr;
std::string* DaemonTest::train_dir_ = nullptr;
std::string* DaemonTest::model_path_ = nullptr;
std::string* DaemonTest::scene0_name_ = nullptr;
std::vector<std::string>* DaemonTest::apps_ = nullptr;
std::map<std::string, std::string>* DaemonTest::expected_ = nullptr;
std::map<std::string, std::string>* DaemonTest::scene0_expected_ = nullptr;

// ------------------------------------------------------------ responses

TEST_F(DaemonTest, StatusReportsModelAndApplications) {
  ServerRunner runner(BaseOptions(SocketPath("status")));
  ASSERT_TRUE(runner.ok()) << runner.create_status();

  Request request;
  request.kind = RequestKind::kStatus;
  const Result<Response> response = Call(runner.server().socket_path(), request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  const json::Object& result = response->result.AsObject();
  EXPECT_TRUE(result.at("model_loaded").AsBool());
  EXPECT_GT(result.at("pid").AsDouble(), 0.0);
  std::vector<std::string> reported;
  for (const json::Value& app : result.at("apps").AsArray()) {
    reported.push_back(app.AsString());
  }
  EXPECT_EQ(reported, *apps_);
  // The metrics snapshot carries the stable daemon.* schema.
  const json::Object& metrics = result.at("metrics").AsObject();
  const json::Object& counters = metrics.at("counters").AsObject();
  EXPECT_TRUE(counters.count("daemon.requests"));
  EXPECT_TRUE(counters.count("daemon.rejected"));
}

TEST_F(DaemonTest, RankDatasetMatchesDirectEngineByteForByte) {
  ServerRunner runner(BaseOptions(SocketPath("rank_dataset")));
  ASSERT_TRUE(runner.ok()) << runner.create_status();

  const Result<Response> response =
      Call(runner.server().socket_path(), RankDatasetRequest());
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  const json::Object& result = response->result.AsObject();
  EXPECT_EQ(result.at("scenes").AsDouble(), static_cast<double>(kScenes));
  const json::Object& proposals = result.at("proposals").AsObject();
  ASSERT_EQ(proposals.size(), expected_->size());
  for (const auto& [app, text] : *expected_) {
    ASSERT_TRUE(proposals.count(app)) << app;
    EXPECT_EQ(proposals.at(app).AsString(), text)
        << "daemon proposals for " << app
        << " differ from the direct engine pipeline";
  }
}

TEST_F(DaemonTest, RankSceneByIndexAndByNameAgree) {
  ServerRunner runner(BaseOptions(SocketPath("rank_scene")));
  ASSERT_TRUE(runner.ok()) << runner.create_status();
  const std::string& socket = runner.server().socket_path();

  Request by_index;
  by_index.kind = RequestKind::kRank;
  by_index.data_dir = *data_dir_;
  by_index.scene_index = 0;
  by_index.top = kTop;
  const Result<Response> indexed = Call(socket, by_index);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  ASSERT_TRUE(indexed->status.ok()) << indexed->status;

  Request by_name;
  by_name.kind = RequestKind::kRank;
  by_name.data_dir = *data_dir_;
  by_name.scene = *scene0_name_;
  by_name.top = kTop;
  const Result<Response> named = Call(socket, by_name);
  ASSERT_TRUE(named.ok()) << named.status();
  ASSERT_TRUE(named->status.ok()) << named->status;

  const json::Object& a = indexed->result.AsObject().at("proposals").AsObject();
  const json::Object& b = named->result.AsObject().at("proposals").AsObject();
  for (const auto& [app, text] : *scene0_expected_) {
    ASSERT_TRUE(a.count(app)) << app;
    ASSERT_TRUE(b.count(app)) << app;
    EXPECT_EQ(a.at(app).AsString(), text) << app;
    EXPECT_EQ(b.at(app).AsString(), text) << app;
  }

  // Out-of-range index and unknown name are request-level errors, not
  // connection failures.
  Request bad = by_index;
  bad.scene_index = 99;
  const Result<Response> out_of_range = Call(socket, bad);
  ASSERT_TRUE(out_of_range.ok()) << out_of_range.status();
  EXPECT_FALSE(out_of_range->status.ok());
  Request missing = by_name;
  missing.scene = "no_such_scene";
  const Result<Response> unknown = Call(socket, missing);
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_FALSE(unknown->status.ok());
}

TEST_F(DaemonTest, UnlearnedDaemonRejectsRankUntilLearnSucceeds) {
  ServerOptions options = BaseOptions(SocketPath("learn"));
  options.model_path.clear();  // start unlearned
  ServerRunner runner(options);
  ASSERT_TRUE(runner.ok()) << runner.create_status();
  const std::string& socket = runner.server().socket_path();

  const Result<Response> early = Call(socket, RankDatasetRequest());
  ASSERT_TRUE(early.ok()) << early.status();
  EXPECT_EQ(early->status.code(), StatusCode::kFailedPrecondition);

  Request learn;
  learn.kind = RequestKind::kLearn;
  learn.data_dir = *train_dir_;
  learn.model_out = *base_dir_ + "/relearned.fxm";
  const Result<Response> learned = Call(socket, learn);
  ASSERT_TRUE(learned.ok()) << learned.status();
  ASSERT_TRUE(learned->status.ok()) << learned->status;
  EXPECT_TRUE(std::filesystem::exists(learn.model_out));

  // The train/rank datasets differ, so only byte-compare against a
  // direct engine run is meaningful with the same model; here the
  // contract is simply: rank now succeeds.
  const Result<Response> ranked = Call(socket, RankDatasetRequest());
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  EXPECT_TRUE(ranked->status.ok()) << ranked->status;
}

// ---------------------------------------------------------- concurrency

TEST_F(DaemonTest, EightConcurrentClientsGetByteIdenticalResponses) {
  ServerOptions options = BaseOptions(SocketPath("concurrent"));
  options.worker_threads = 4;
  ServerRunner runner(options);
  ASSERT_TRUE(runner.ok()) << runner.create_status();
  const std::string socket = runner.server().socket_path();

  constexpr int kClients = 8;
  constexpr int kRoundsPerClient = 3;
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<FixydClient> client = FixydClient::Connect(socket);
      if (!client.ok()) {
        errors[c] = client.status().ToString();
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        // Mixed workload: every client interleaves cheap status probes
        // with full rank-dataset requests.
        Request status_request;
        status_request.kind = RequestKind::kStatus;
        const Result<Response> status = client->Call(status_request);
        if (!status.ok() || !status->status.ok()) {
          errors[c] = "status: " +
                      (status.ok() ? status->status : status.status()).ToString();
          failures.fetch_add(1);
          return;
        }
        const Result<Response> ranked = client->Call(RankDatasetRequest());
        if (!ranked.ok() || !ranked->status.ok()) {
          errors[c] = "rank: " +
                      (ranked.ok() ? ranked->status : ranked.status()).ToString();
          failures.fetch_add(1);
          return;
        }
        const json::Object& proposals =
            ranked->result.AsObject().at("proposals").AsObject();
        for (const auto& [app, text] : *expected_) {
          if (!proposals.count(app) ||
              proposals.at(app).AsString() != text) {
            errors[c] = "client " + std::to_string(c) +
                        " got non-identical proposals for " + app;
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (const std::string& error : errors) {
    EXPECT_TRUE(error.empty()) << error;
  }
}

// ----------------------------------------------------- admission control

TEST_F(DaemonTest, OverloadRejectsWithUnavailable) {
  ServerOptions options = BaseOptions(SocketPath("overload"));
  options.worker_threads = 1;
  options.max_queue_depth = 1;
  options.test_delay_ms = 300;  // every admitted request holds its slot
  ServerRunner runner(options);
  ASSERT_TRUE(runner.ok()) << runner.create_status();
  const std::string socket = runner.server().socket_path();

  // First request is admitted and sleeps in its worker; while it holds
  // the only slot, a second request must be rejected immediately.
  Result<FixydClient> slow = FixydClient::Connect(socket);
  ASSERT_TRUE(slow.ok()) << slow.status();
  Request status_request;
  status_request.kind = RequestKind::kStatus;
  std::thread occupant([&] {
    const Result<Response> response = slow->Call(status_request);
    EXPECT_TRUE(response.ok() && response->status.ok());
  });
  // Give the first request time to be admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const Result<Response> rejected = Call(socket, status_request);
  occupant.join();
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->status.code(), StatusCode::kUnavailable)
      << rejected->status;
}

TEST_F(DaemonTest, DeadlineExceededInQueueRejects) {
  ServerOptions options = BaseOptions(SocketPath("deadline"));
  options.worker_threads = 1;
  options.test_delay_ms = 120;  // queue wait exceeds any small deadline
  ServerRunner runner(options);
  ASSERT_TRUE(runner.ok()) << runner.create_status();

  Request request;
  request.kind = RequestKind::kStatus;
  request.deadline_ms = 10;
  const Result<Response> response =
      Call(runner.server().socket_path(), request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status.code(), StatusCode::kUnavailable)
      << response->status;

  // Without a deadline the same slow daemon answers fine.
  request.deadline_ms = 0;
  const Result<Response> patient =
      Call(runner.server().socket_path(), request);
  ASSERT_TRUE(patient.ok()) << patient.status();
  EXPECT_TRUE(patient->status.ok()) << patient->status;
}

// ------------------------------------------------------ frame corruption

// Corrupted request frames must never wedge or kill the daemon: framing
// errors are answered with a kError frame (when the stream still admits
// a write) and the connection dropped, after which a fresh client gets
// normal service.
TEST_F(DaemonTest, CorruptFramesAreRejectedAndTheDaemonStaysHealthy) {
  ServerRunner runner(BaseOptions(SocketPath("corrupt")));
  ASSERT_TRUE(runner.ok()) << runner.create_status();
  const std::string socket = runner.server().socket_path();

  Request probe;
  probe.kind = RequestKind::kStatus;
  const std::string valid = EncodeRequestFrame(probe);
  std::mt19937 rng(20260808);

  const auto expect_healthy = [&](const std::string& after) {
    const Result<Response> response = Call(socket, probe);
    ASSERT_TRUE(response.ok()) << after << ": " << response.status();
    EXPECT_TRUE(response->status.ok()) << after << ": " << response->status;
  };

  // Truncation at seeded cut points: the parser just waits for more
  // bytes; closing mid-frame must not disturb the daemon.
  for (int round = 0; round < 4; ++round) {
    std::uniform_int_distribution<size_t> cut(1, valid.size() - 1);
    const size_t point = cut(rng);
    Result<FixydClient> client = FixydClient::Connect(socket);
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->SendRaw(valid.substr(0, point)).ok());
    // Connection dropped by the client going away mid-frame.
    expect_healthy("truncation at " + std::to_string(point));
  }

  // Seeded single-bit flips across the whole frame — CRC body flips are
  // detected by the checksum, header flips by the type/length checks.
  for (int round = 0; round < 6; ++round) {
    std::uniform_int_distribution<size_t> position(0, valid.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    std::string flipped = valid;
    flipped[position(rng)] ^= static_cast<char>(1 << bit(rng));
    Result<FixydClient> client = FixydClient::Connect(socket);
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->SendRaw(flipped).ok());
    // Either the daemon detected corruption (kError then close) or the
    // flip landed in the JSON payload with a fixed-up CRC impossible —
    // any CRC-breaking flip must produce a kError frame.
    const Result<shard::Frame> frame = client->ReadFrame(5000);
    if (frame.ok()) {
      EXPECT_EQ(frame->type, shard::FrameType::kError);
    }
    expect_healthy("bit flip round " + std::to_string(round));
  }

  // A bad type byte poisons the parser: kError, then the stream dies.
  {
    std::string bad_type = valid;
    bad_type[0] = static_cast<char>(0x7f);
    Result<FixydClient> client = FixydClient::Connect(socket);
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->SendRaw(bad_type).ok());
    const Result<shard::Frame> frame = client->ReadFrame(5000);
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, shard::FrameType::kError);
    expect_healthy("bad type byte");
  }

  // An oversized length field is rejected before any allocation.
  {
    std::string oversized;
    oversized.push_back(static_cast<char>(shard::FrameType::kRequest));
    const uint32_t huge = (1u << 20) + 1;
    for (int b = 0; b < 4; ++b) {
      oversized.push_back(static_cast<char>((huge >> (8 * b)) & 0xff));
    }
    // The parser only examines a header once a full frame-overhead's
    // worth of bytes is buffered; pad with a (never-checked) CRC.
    oversized.append(4, '\0');
    Result<FixydClient> client = FixydClient::Connect(socket);
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->SendRaw(oversized).ok());
    const Result<shard::Frame> frame = client->ReadFrame(5000);
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, shard::FrameType::kError);
    expect_healthy("oversized length");
  }

  // A well-formed frame of a non-request type gets a kError answer but
  // keeps the connection usable (the byte stream itself is intact).
  {
    Result<FixydClient> client = FixydClient::Connect(socket);
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(
        client->SendRaw(shard::EncodeFrame(shard::FrameType::kHeartbeat, ""))
            .ok());
    const Result<shard::Frame> frame = client->ReadFrame(5000);
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, shard::FrameType::kError);
    const Result<Response> follow_up = client->Call(probe);
    ASSERT_TRUE(follow_up.ok()) << follow_up.status();
    EXPECT_TRUE(follow_up->status.ok()) << follow_up->status;
  }

  // Unparseable JSON inside a correctly framed request.
  {
    Result<FixydClient> client = FixydClient::Connect(socket);
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client
                    ->SendRaw(shard::EncodeFrame(shard::FrameType::kRequest,
                                                 "{not json"))
                    .ok());
    const Result<shard::Frame> frame = client->ReadFrame(5000);
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, shard::FrameType::kError);
    expect_healthy("unparseable JSON");
  }
}

// ------------------------------------------------------ socket lifecycle

TEST_F(DaemonTest, StaleSocketIsReplacedAndLiveSocketRefused) {
  const std::string path = SocketPath("stale");
  {
    // A stale regular file where the socket should go — the leftover of
    // a crashed daemon — is detected (connect fails) and replaced.
    std::ofstream stale(path);
    stale << "stale";
  }
  ServerRunner first(BaseOptions(path));
  ASSERT_TRUE(first.ok()) << first.create_status();

  // A second daemon on the same path must refuse: something is serving.
  Result<std::unique_ptr<FixydServer>> second =
      FixydServer::Create(BaseOptions(path));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists)
      << second.status();

  first.Stop();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(DaemonTest, ShutdownRequestDrainsAndUnlinksSocket) {
  ServerRunner runner(BaseOptions(SocketPath("shutdown")));
  ASSERT_TRUE(runner.ok()) << runner.create_status();
  const std::string socket = runner.server().socket_path();

  Request shutdown;
  shutdown.kind = RequestKind::kShutdown;
  const Result<Response> response = Call(socket, shutdown);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;

  runner.Join();  // Serve() must return on its own
  EXPECT_TRUE(runner.serve_status().ok()) << runner.serve_status();
  EXPECT_FALSE(std::filesystem::exists(socket));

  // Connecting after shutdown fails — nothing is listening.
  EXPECT_FALSE(FixydClient::Connect(socket).ok());
}

#endif  // FIXY_DAEMON_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace fixy::daemon
