// Tests for src/eval: proposal/error matching, precision@k, recall, and
// table rendering.
#include <gtest/gtest.h>

#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace fixy::eval {
namespace {

geom::Box3d CarBoxAt(double x, double y) {
  return geom::Box3d({x, y, 0.85}, 4.5, 1.9, 1.7, 0.0);
}

sim::GtError MakeError(sim::GtErrorType type, const std::string& scene,
                       int first, int last, double x, double y) {
  sim::GtError error;
  error.type = type;
  error.scene_name = scene;
  error.object_class = ObjectClass::kCar;
  error.first_frame = first;
  error.last_frame = last;
  for (int f = first; f <= last; ++f) {
    error.boxes[f] = CarBoxAt(x + 0.5 * (f - first), y);
  }
  return error;
}

ErrorProposal MakeProposal(ProposalKind kind, const std::string& scene,
                           int first, int last, int rep_frame, double x,
                           double y, double score = 1.0) {
  ErrorProposal p;
  p.kind = kind;
  p.scene_name = scene;
  p.first_frame = first;
  p.last_frame = last;
  p.frame_index = rep_frame;
  p.box = CarBoxAt(x, y);
  p.object_class = ObjectClass::kCar;
  p.score = score;
  return p;
}

// --------------------------------------------------------------- Matching

TEST(MatchingTest, KindTypeCompatibility) {
  using sim::GtErrorType;
  EXPECT_TRUE(KindMatchesType(ProposalKind::kMissingTrack,
                              GtErrorType::kMissingTrack));
  EXPECT_FALSE(KindMatchesType(ProposalKind::kMissingTrack,
                               GtErrorType::kGhostTrack));
  EXPECT_TRUE(KindMatchesType(ProposalKind::kMissingObservation,
                              GtErrorType::kMissingObservation));
  EXPECT_TRUE(
      KindMatchesType(ProposalKind::kModelError, GtErrorType::kGhostTrack));
  EXPECT_TRUE(KindMatchesType(ProposalKind::kModelError,
                              GtErrorType::kClassificationError));
  EXPECT_TRUE(KindMatchesType(ProposalKind::kModelError,
                              GtErrorType::kLocalizationError));
  EXPECT_FALSE(KindMatchesType(ProposalKind::kModelError,
                               GtErrorType::kMissingTrack));
}

TEST(MatchingTest, ExactOverlapMatches) {
  const auto error =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 2, 8, 10, 0);
  const auto proposal =
      MakeProposal(ProposalKind::kMissingTrack, "s", 2, 8, 4, 11.0, 0);
  EXPECT_TRUE(ProposalMatchesError(proposal, error));
}

TEST(MatchingTest, DifferentSceneRejected) {
  const auto error =
      MakeError(sim::GtErrorType::kMissingTrack, "s1", 2, 8, 10, 0);
  const auto proposal =
      MakeProposal(ProposalKind::kMissingTrack, "s2", 2, 8, 4, 11.0, 0);
  EXPECT_FALSE(ProposalMatchesError(proposal, error));
}

TEST(MatchingTest, DisjointFramesRejected) {
  const auto error =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 3, 10, 0);
  const auto proposal =
      MakeProposal(ProposalKind::kMissingTrack, "s", 20, 25, 22, 10, 0);
  EXPECT_FALSE(ProposalMatchesError(proposal, error));
}

TEST(MatchingTest, GeometricMismatchRejected) {
  const auto error =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 8, 10, 0);
  const auto proposal =
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 8, 4, 50.0, 30.0);
  EXPECT_FALSE(ProposalMatchesError(proposal, error));
}

TEST(MatchingTest, FrameSlackAllowsNearMiss) {
  const auto error =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 5, 10, 10, 0);
  // Proposal span ends 2 frames before the error starts; within slack 3.
  const auto proposal =
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 3, 3, 10.0, 0);
  MatchOptions options;
  options.frame_slack = 3;
  EXPECT_TRUE(ProposalMatchesError(proposal, error, options));
  options.frame_slack = 1;
  EXPECT_FALSE(ProposalMatchesError(proposal, error, options));
}

TEST(MatchingTest, EmptyErrorBoxesRejected) {
  sim::GtError error;
  error.type = sim::GtErrorType::kMissingTrack;
  error.scene_name = "s";
  const auto proposal =
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 3, 1, 10, 0);
  EXPECT_FALSE(ProposalMatchesError(proposal, error));
}

TEST(MatchingTest, IouThresholdRespected) {
  const auto error =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 10, 0);
  // Error box at frame 2 is at x=11; proposal at x=13 overlaps slightly.
  const auto proposal =
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 13.0, 0);
  MatchOptions loose;
  loose.iou_threshold = 0.1;
  EXPECT_TRUE(ProposalMatchesError(proposal, error, loose));
  MatchOptions strict;
  strict.iou_threshold = 0.6;
  EXPECT_FALSE(ProposalMatchesError(proposal, error, strict));
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, PrecisionAtKCountsHits) {
  const auto e1 = MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 10, 0);
  const auto e2 =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 40, 10);
  std::vector<ErrorProposal> ranked = {
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 11, 0, 0.9),
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 80, 0, 0.8),
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 41, 10, 0.7),
  };
  const std::vector<const sim::GtError*> errors = {&e1, &e2};
  const PrecisionResult result = PrecisionAtK(ranked, errors, 3);
  EXPECT_EQ(result.hits, 2u);
  EXPECT_EQ(result.considered, 3u);
  EXPECT_NEAR(result.precision, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, PrecisionUsesAvailableWhenFewerThanK) {
  const auto e1 = MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 10, 0);
  std::vector<ErrorProposal> ranked = {
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 11, 0)};
  const PrecisionResult result = PrecisionAtK(ranked, {&e1}, 10);
  EXPECT_EQ(result.considered, 1u);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
}

TEST(MetricsTest, AuditProtocolCountsDuplicatesAsHits) {
  // Default protocol: both proposals flag the same real missing object;
  // an auditor verifies each as a real error.
  const auto e1 = MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 10, 0);
  std::vector<ErrorProposal> ranked = {
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 11, 0, 0.9),
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 3, 11.2, 0, 0.8),
  };
  const PrecisionResult result = PrecisionAtK(ranked, {&e1}, 2);
  EXPECT_EQ(result.hits, 2u);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
}

TEST(MetricsTest, OneToOneProtocolDoesNotDoubleCount) {
  const auto e1 = MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 10, 0);
  std::vector<ErrorProposal> ranked = {
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 11, 0, 0.9),
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 3, 11.2, 0, 0.8),
  };
  MatchOptions options;
  options.one_to_one = true;
  const PrecisionResult result = PrecisionAtK(ranked, {&e1}, 2, options);
  EXPECT_EQ(result.hits, 1u);
  EXPECT_DOUBLE_EQ(result.precision, 0.5);
}

TEST(MetricsTest, EmptyInputs) {
  const PrecisionResult none = PrecisionAtK({}, {}, 10);
  EXPECT_EQ(none.considered, 0u);
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  const RecallResult recall = RecallOf({}, {});
  EXPECT_EQ(recall.total, 0u);
  EXPECT_DOUBLE_EQ(recall.recall, 0.0);
}

TEST(MetricsTest, RecallCountsFoundErrors) {
  const auto e1 = MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 10, 0);
  const auto e2 =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 40, 10);
  const auto e3 =
      MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 70, -10);
  std::vector<ErrorProposal> proposals = {
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 11, 0)};
  const RecallResult result = RecallOf(proposals, {&e1, &e2, &e3});
  EXPECT_EQ(result.found, 1u);
  EXPECT_EQ(result.total, 3u);
  EXPECT_NEAR(result.recall, 1.0 / 3.0, 1e-12);
}

TEST(MetricsTest, ClaimableErrorsFiltersByKindAndScene) {
  sim::GtLedger ledger;
  ledger.errors.push_back(
      MakeError(sim::GtErrorType::kMissingTrack, "a", 0, 5, 10, 0));
  ledger.errors.push_back(
      MakeError(sim::GtErrorType::kGhostTrack, "a", 0, 5, 20, 0));
  ledger.errors.push_back(
      MakeError(sim::GtErrorType::kMissingTrack, "b", 0, 5, 30, 0));
  EXPECT_EQ(ClaimableErrors(ledger, ProposalKind::kMissingTrack).size(), 2u);
  EXPECT_EQ(ClaimableErrors(ledger, ProposalKind::kMissingTrack, "a").size(),
            1u);
  EXPECT_EQ(ClaimableErrors(ledger, ProposalKind::kModelError, "a").size(),
            1u);
}

TEST(MetricsTest, AnyProposalMatches) {
  const auto e1 = MakeError(sim::GtErrorType::kMissingTrack, "s", 0, 5, 10, 0);
  std::vector<ErrorProposal> proposals = {
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 80, 0),
      MakeProposal(ProposalKind::kMissingTrack, "s", 0, 5, 2, 11, 0)};
  EXPECT_TRUE(AnyProposalMatches(proposals, e1));
  EXPECT_FALSE(AnyProposalMatches({proposals[0]}, e1));
}

// ----------------------------------------------------------------- Report

TEST(ReportTest, TableRendersAlignedColumns) {
  Table table({"Method", "P@10"});
  table.AddRow({"FIXY", "69%"});
  table.AddRow({"Ad-hoc MA (rand)", "32%"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| Method"), std::string::npos);
  EXPECT_NE(s.find("| FIXY"), std::string::npos);
  EXPECT_NE(s.find("| Ad-hoc MA (rand) |"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(ReportTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.AddRow({"1"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(ReportTest, PercentFormatting) {
  EXPECT_EQ(Percent(0.69), "69%");
  EXPECT_EQ(Percent(1.0), "100%");
  EXPECT_EQ(Percent(0.0), "0%");
  EXPECT_EQ(Percent(0.666), "67%");
}

}  // namespace
}  // namespace fixy::eval
