// Tests for the sharded multi-process ranking pipeline (src/shard): shard
// planning, the checkpoint format, the wire protocol, and — the heart of
// the suite — kill/resume determinism: a run killed at any seeded
// injection point (pre-rank, mid-shard, post-checkpoint-write, a wedged
// worker, a dead coordinator) must resume to a merged report
// byte-identical to the uninterrupted single-process run, at 1..4
// workers and across worker counts at the resume boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FIXY_SHARD_TEST_HAVE_FORK 1
#endif

#include "core/engine.h"
#include "io/fxb.h"
#include "io/scene_io.h"
#include "shard/checkpoint.h"
#include "shard/coordinator.h"
#include "shard/shard_plan.h"
#include "shard/wire.h"
#include "sim/generate.h"

namespace fixy::shard {
namespace {

// ------------------------------------------------------------- planning

TEST(ShardPlanTest, ResolveScenesPerShard) {
  // Explicit request wins.
  EXPECT_EQ(ResolveScenesPerShard(100, 7), 7);
  // Auto: ceil(count / 16), minimum 1.
  EXPECT_EQ(ResolveScenesPerShard(160, 0), 10);
  EXPECT_EQ(ResolveScenesPerShard(161, 0), 11);
  EXPECT_EQ(ResolveScenesPerShard(3, 0), 1);
  EXPECT_EQ(ResolveScenesPerShard(0, 0), 1);
}

TEST(ShardPlanTest, PlanShardsPartitionsTheSceneRange) {
  for (const size_t count : {0u, 1u, 5u, 16u, 17u, 100u}) {
    for (const int per : {1, 2, 7, 100}) {
      const std::vector<ShardRange> shards = PlanShards(count, per);
      size_t covered = 0;
      size_t next = 0;
      for (const ShardRange& shard : shards) {
        EXPECT_EQ(shard.begin, next) << "count=" << count << " per=" << per;
        EXPECT_GT(shard.end, shard.begin);
        EXPECT_LE(shard.size(), static_cast<size_t>(per));
        covered += shard.size();
        next = shard.end;
      }
      EXPECT_EQ(covered, count) << "count=" << count << " per=" << per;
    }
  }
}

TEST(ShardPlanTest, LayoutIgnoresWorkerCount) {
  // The shard layout is a function of (scene_count, scenes_per_shard)
  // only — there is no worker-count input to vary, by construction; this
  // pins the ranges so a change to the planner shows up as a test diff.
  const std::vector<ShardRange> shards = PlanShards(7, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], (ShardRange{0, 3}));
  EXPECT_EQ(shards[1], (ShardRange{3, 6}));
  EXPECT_EQ(shards[2], (ShardRange{6, 7}));
}

TEST(ShardPlanTest, FingerprintSensitiveToEveryInput) {
  RunFingerprintInputs base;
  base.source = {12, 3456, 789};
  base.model_crc = 0xdeadbeef;
  base.model_bytes = 1024;
  base.apps = {"model-errors", "missing-obs"};
  base.top_k_per_class = 5;
  base.scene_count = 40;
  base.scenes_per_shard = 3;
  const uint64_t reference = ComputeRunFingerprint(base);
  EXPECT_EQ(ComputeRunFingerprint(base), reference);  // deterministic

  auto mutated = [&](auto&& mutate) {
    RunFingerprintInputs inputs = base;
    mutate(inputs);
    return ComputeRunFingerprint(inputs);
  };
  EXPECT_NE(mutated([](auto& in) { in.source.file_count++; }), reference);
  EXPECT_NE(mutated([](auto& in) { in.source.total_bytes++; }), reference);
  EXPECT_NE(mutated([](auto& in) { in.source.max_mtime_ns++; }), reference);
  EXPECT_NE(mutated([](auto& in) { in.model_crc++; }), reference);
  EXPECT_NE(mutated([](auto& in) { in.model_bytes++; }), reference);
  EXPECT_NE(mutated([](auto& in) { in.apps.pop_back(); }), reference);
  EXPECT_NE(mutated([](auto& in) { std::swap(in.apps[0], in.apps[1]); }),
            reference);
  EXPECT_NE(mutated([](auto& in) { in.top_k_per_class++; }), reference);
  EXPECT_NE(mutated([](auto& in) { in.scene_count++; }), reference);
  EXPECT_NE(mutated([](auto& in) { in.scenes_per_shard++; }), reference);
}

// ---------------------------------------------------------- checkpoints

MultiAppReport MakeReport() {
  MultiAppReport report;
  report.apps = {"model-errors", "missing-obs"};
  report.reports.resize(2);
  for (BatchReport& batch : report.reports) {
    batch.outcomes.resize(2);
    batch.outcomes[0].scene_name = "scene_a";
    batch.outcomes[1].scene_name = "scene_b";
    batch.outcomes[1].status = Status::IoError("decode blew up");
  }
  ErrorProposal proposal;
  proposal.scene_name = "scene_a";
  proposal.kind = ProposalKind::kMissingTrack;
  proposal.track_id = 77;
  proposal.frame_index = 3;
  proposal.box = geom::Box3d({1.5, -2.25, 0.875}, 4.5, 1.875, 1.5, 0.25);
  proposal.object_class = ObjectClass::kCar;
  proposal.score = -1.25;
  proposal.model_confidence = 0.625;
  proposal.first_frame = 1;
  proposal.last_frame = 9;
  report.reports[0].outcomes[0].proposals.push_back(proposal);
  return report;
}

TEST(CheckpointTest, ReportRoundTripsByteExact) {
  const MultiAppReport report = MakeReport();
  const std::string payload = EncodeMultiAppReport(report);
  const auto decoded = DecodeMultiAppReport(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // The canonical bytes are the equality relation the determinism tests
  // use — a round trip must be a fixed point.
  EXPECT_EQ(EncodeMultiAppReport(*decoded), payload);
  // Summary counters are recomputed on decode.
  EXPECT_EQ(decoded->reports[0].scenes_ok, 1u);
  EXPECT_EQ(decoded->reports[0].scenes_quarantined, 1u);
  ASSERT_EQ(decoded->reports[0].outcomes[0].proposals.size(), 1u);
  const ErrorProposal& proposal = decoded->reports[0].outcomes[0].proposals[0];
  EXPECT_EQ(proposal.track_id, 77u);
  EXPECT_EQ(proposal.score, -1.25);  // bit-exact, not approximate
  EXPECT_EQ(proposal.box.length, 4.5);
}

TEST(CheckpointTest, CheckpointRoundTripAndValidationLadder) {
  ShardCheckpoint checkpoint;
  checkpoint.shard_index = 3;
  checkpoint.range = {6, 8};
  checkpoint.fingerprint = 0xabcdef0123456789ull;
  checkpoint.report = MakeReport();
  const std::string blob = EncodeShardCheckpoint(checkpoint);
  ASSERT_GE(blob.size(), kCheckpointHeaderSize);

  const auto decoded = DecodeShardCheckpoint(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->shard_index, 3u);
  EXPECT_EQ(decoded->range, (ShardRange{6, 8}));
  EXPECT_EQ(decoded->fingerprint, checkpoint.fingerprint);
  EXPECT_EQ(EncodeMultiAppReport(decoded->report),
            EncodeMultiAppReport(checkpoint.report));

  // Each validation gate rejects its own lie.
  std::string bad = blob;
  bad[0] = 'G';  // magic
  EXPECT_FALSE(DecodeShardCheckpoint(bad).ok());
  bad = blob.substr(0, kCheckpointHeaderSize - 1);  // short
  EXPECT_FALSE(DecodeShardCheckpoint(bad).ok());
  bad = blob;
  bad[kCheckpointVersionOffset] = 9;  // version (header CRC now stale)
  EXPECT_FALSE(DecodeShardCheckpoint(bad).ok());
  bad = blob;
  bad[kCheckpointHeaderSize] ^= 0x40;  // payload byte vs payload CRC
  EXPECT_FALSE(DecodeShardCheckpoint(bad).ok());
  bad = blob + "trailing";  // length lie
  EXPECT_FALSE(DecodeShardCheckpoint(bad).ok());
}

TEST(CheckpointTest, WriteLoadRoundTripsThroughDisk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("fixy_ckpt_rt_" + std::to_string(::getpid())))
          .string();
  ShardCheckpoint checkpoint;
  checkpoint.shard_index = 1;
  checkpoint.range = {2, 4};
  checkpoint.fingerprint = 42;
  checkpoint.report = MakeReport();
  ASSERT_TRUE(WriteShardCheckpoint(dir, checkpoint).ok());
  const auto loaded = LoadShardCheckpoint(ShardCheckpointPath(dir, 1));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(EncodeMultiAppReport(loaded->report),
            EncodeMultiAppReport(checkpoint.report));
  EXPECT_FALSE(LoadShardCheckpoint(ShardCheckpointPath(dir, 2)).ok());
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------------- wire

TEST(WireTest, FramesRoundTripThroughArbitraryChunking) {
  std::string stream;
  stream += EncodeFrame(FrameType::kHello, EncodeU32Payload(5));
  stream += EncodeFrame(FrameType::kHeartbeat, "");
  stream += EncodeFrame(FrameType::kProgress, EncodeU32Payload(3));
  stream += EncodeFrame(FrameType::kError,
                        EncodeErrorPayload(Status::IoError("disk gone")));
  stream += EncodeFrame(FrameType::kDone, "");

  // Feed the stream one byte at a time — the harshest chunking a
  // non-blocking pipe can produce.
  FrameParser parser;
  std::vector<Frame> frames;
  for (const char byte : stream) {
    for (Frame& frame : parser.Consume(std::string_view(&byte, 1))) {
      frames.push_back(std::move(frame));
    }
  }
  EXPECT_FALSE(parser.corrupt());
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(DecodeU32Payload(frames[0].payload).value(), 5u);
  EXPECT_EQ(frames[2].type, FrameType::kProgress);
  EXPECT_EQ(DecodeU32Payload(frames[2].payload).value(), 3u);
  const Status error = DecodeErrorPayload(frames[3].payload);
  EXPECT_EQ(error.code(), StatusCode::kIoError);
  EXPECT_EQ(error.message(), "disk gone");
  EXPECT_EQ(frames[4].type, FrameType::kDone);
}

TEST(WireTest, CorruptionPoisonsTheStream) {
  std::string frame = EncodeFrame(FrameType::kProgress, EncodeU32Payload(9));
  frame[frame.size() - 1] ^= 0x01;  // break the CRC
  FrameParser parser;
  EXPECT_TRUE(parser.Consume(frame).empty());
  EXPECT_TRUE(parser.corrupt());
  // Nothing after the violation is ever surfaced.
  EXPECT_TRUE(parser.Consume(EncodeFrame(FrameType::kDone, "")).empty());
}

// ----------------------------------------- kill / resume determinism

#if defined(FIXY_CLI_PATH) && defined(FIXY_SHARD_TEST_HAVE_FORK)

// Scoped environment variable for injection specs (fork/exec inherits
// the test's environment).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

class ShardKillResumeTest : public ::testing::Test {
 protected:
  static constexpr size_t kScenes = 6;

  static void SetUpTestSuite() {
    namespace fs = std::filesystem;
    base_dir_ = new std::string(
        (fs::temp_directory_path() /
         ("fixy_shard_test_" + std::to_string(::getpid())))
            .string());
    fs::remove_all(*base_dir_);
    fs::create_directories(*base_dir_);
    data_dir_ = new std::string(*base_dir_ + "/data");
    model_path_ = new std::string(*base_dir_ + "/model.fxm");

    // Small scenes: the suite spawns dozens of worker processes and each
    // ranks at most one scene.
    sim::SimProfile profile = sim::LyftLikeProfile();
    profile.world.duration_seconds = 2.0;
    profile.world.mean_object_count = 6.0;
    Fixy trainer;
    const sim::GeneratedDataset training =
        sim::GenerateDataset(profile, "shard_train", 3, 271);
    ASSERT_TRUE(trainer.Learn(training.dataset).ok());
    ASSERT_TRUE(trainer.SaveModel(*model_path_).ok());
    const sim::GeneratedDataset ranking =
        sim::GenerateDataset(profile, "shard_rank", kScenes, 828);
    ASSERT_TRUE(io::SaveDataset(ranking.dataset, *data_dir_).ok());

    // The single-process reference: the same model and streaming
    // pipeline the workers run, over the whole dataset in one process.
    Fixy ranker;
    ASSERT_TRUE(ranker.LoadModel(*model_path_).ok());
    auto source = io::DirectorySceneSource::Open(*data_dir_);
    ASSERT_TRUE(source.ok()) << source.status();
    BatchOptions batch;
    batch.num_threads = 1;
    const auto reference =
        ranker.RankDatasetStreaming(*source, {"model-errors"}, batch);
    ASSERT_TRUE(reference.ok()) << reference.status();
    reference_bytes_ = new std::string(EncodeMultiAppReport(*reference));
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*base_dir_);
    delete base_dir_;
    delete data_dir_;
    delete model_path_;
    delete reference_bytes_;
    base_dir_ = data_dir_ = model_path_ = reference_bytes_ = nullptr;
  }

  // A fresh checkpoint directory per scenario, so runs cannot see each
  // other's checkpoints.
  std::string FreshCheckpointDir(const std::string& tag) {
    const std::string dir = *base_dir_ + "/ckpt_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static ShardOptions BaseOptions(int workers,
                                  const std::string& checkpoint_dir) {
    ShardOptions options;
    options.workers = workers;
    options.scenes_per_shard = 1;  // kScenes shards
    options.worker_binary = FIXY_CLI_PATH;
    options.checkpoint_dir = checkpoint_dir;
    options.backoff_base_ms = 1;  // keep retries fast in tests
    options.backoff_cap_ms = 10;
    return options;
  }

  static Result<ShardRunReport> Run(const ShardOptions& options) {
    return RankDatasetSharded(*data_dir_, *model_path_, {"model-errors"},
                              options);
  }

  static std::string* base_dir_;
  static std::string* data_dir_;
  static std::string* model_path_;
  static std::string* reference_bytes_;
};

std::string* ShardKillResumeTest::base_dir_ = nullptr;
std::string* ShardKillResumeTest::data_dir_ = nullptr;
std::string* ShardKillResumeTest::model_path_ = nullptr;
std::string* ShardKillResumeTest::reference_bytes_ = nullptr;

// Baseline: an uninterrupted sharded run merges byte-identical to the
// single-process run at every worker count.
TEST_F(ShardKillResumeTest, MergedReportMatchesSingleProcessAtAnyWorkerCount) {
  for (int workers = 1; workers <= 4; ++workers) {
    const auto run = Run(BaseOptions(
        workers, FreshCheckpointDir("clean_w" + std::to_string(workers))));
    ASSERT_TRUE(run.ok()) << "workers=" << workers << ": " << run.status();
    EXPECT_EQ(run->shards_quarantined, 0u);
    EXPECT_EQ(run->shards_completed, kScenes);
    EXPECT_EQ(EncodeMultiAppReport(run->merged), *reference_bytes_)
        << "workers=" << workers;
  }
}

// A worker killed once at each seeded injection point is retried on a
// fresh worker within the same run; the merged report stays
// byte-identical at 1..4 workers.
TEST_F(ShardKillResumeTest, InRunRetryAfterKillIsByteIdentical) {
  for (const char* point : {"pre-rank", "mid-shard", "post-checkpoint"}) {
    for (int workers = 1; workers <= 4; ++workers) {
      const std::string tag =
          std::string(point) + "_w" + std::to_string(workers);
      const std::string sentinel = *base_dir_ + "/sent_" + tag;
      const ScopedEnv kill("FIXY_SHARD_KILL",
                           "2:" + std::string(point) + ":" + sentinel);
      const auto run = Run(BaseOptions(workers, FreshCheckpointDir(tag)));
      ASSERT_TRUE(run.ok()) << tag << ": " << run.status();
      EXPECT_TRUE(std::filesystem::exists(sentinel))
          << tag << ": injection never fired";
      EXPECT_EQ(run->shards_quarantined, 0u) << tag;
      EXPECT_GE(run->shards[2].attempts, 2) << tag;
      EXPECT_EQ(EncodeMultiAppReport(run->merged), *reference_bytes_) << tag;
    }
  }
}

// A run whose *coordinator* dies mid-way (stop_after_shards) resumes
// from the completed checkpoints — including across a worker-count
// change at the resume boundary — and merges byte-identical.
TEST_F(ShardKillResumeTest, CoordinatorDeathResumesByteIdentical) {
  for (const int cold_workers : {1, 3}) {
    for (const int resume_workers : {1, 2, 4}) {
      const std::string tag = "resume_c" + std::to_string(cold_workers) +
                              "_r" + std::to_string(resume_workers);
      const std::string checkpoint_dir = FreshCheckpointDir(tag);
      ShardOptions cold = BaseOptions(cold_workers, checkpoint_dir);
      cold.stop_after_shards = 2;  // die after two durable shards
      const auto killed = Run(cold);
      ASSERT_FALSE(killed.ok()) << tag << ": test hook did not fire";

      ShardOptions resume = BaseOptions(resume_workers, checkpoint_dir);
      resume.resume = true;
      const auto resumed = Run(resume);
      ASSERT_TRUE(resumed.ok()) << tag << ": " << resumed.status();
      EXPECT_EQ(resumed->shards_quarantined, 0u) << tag;
      EXPECT_GE(resumed->checkpoints_reused, 2u) << tag;
      EXPECT_EQ(EncodeMultiAppReport(resumed->merged), *reference_bytes_)
          << tag;
    }
  }
}

// A worker killed at a seeded point *and* the coordinator dying leaves a
// partial checkpoint directory; a fresh --resume run at a different
// worker count completes it byte-identically.
TEST_F(ShardKillResumeTest, WorkerKillPlusResumeIsByteIdentical) {
  for (const char* point : {"pre-rank", "mid-shard", "post-checkpoint"}) {
    const std::string tag = std::string("killresume_") + point;
    const std::string checkpoint_dir = FreshCheckpointDir(tag);
    {
      // Kill shard 1 permanently (no sentinel) with one allowed attempt:
      // the cold run quarantines it and completes the rest.
      const ScopedEnv kill("FIXY_SHARD_KILL", "1:" + std::string(point));
      ShardOptions cold = BaseOptions(2, checkpoint_dir);
      cold.max_attempts = 1;
      const auto killed = Run(cold);
      ASSERT_TRUE(killed.ok()) << tag << ": " << killed.status();
      ASSERT_EQ(killed->shards_quarantined, 1u) << tag;
      EXPECT_TRUE(killed->shards[1].quarantined) << tag;
      // The quarantined shard's scenes carry error outcomes; the merged
      // report therefore must NOT match the reference yet.
      EXPECT_NE(EncodeMultiAppReport(killed->merged), *reference_bytes_);
    }
    // Resume with the injection disarmed: quarantine is not durable, so
    // the shard is re-ranked and the report completes.
    ShardOptions resume = BaseOptions(4, checkpoint_dir);
    resume.resume = true;
    const auto resumed = Run(resume);
    ASSERT_TRUE(resumed.ok()) << tag << ": " << resumed.status();
    EXPECT_EQ(resumed->shards_quarantined, 0u) << tag;
    // post-checkpoint kills after the checkpoint rename, so that shard's
    // work IS durable and reused; the earlier points leave no checkpoint.
    const size_t expected_reused =
        std::string(point) == "post-checkpoint" ? kScenes : kScenes - 1;
    EXPECT_EQ(resumed->checkpoints_reused, expected_reused) << tag;
    EXPECT_EQ(EncodeMultiAppReport(resumed->merged), *reference_bytes_)
        << tag;
  }
}

// post-checkpoint kill is the subtle one: the shard IS durably complete
// when the worker dies, and a resumed run must reuse — not re-rank — it.
TEST_F(ShardKillResumeTest, PostCheckpointKillLeavesReusableCheckpoint) {
  const std::string checkpoint_dir = FreshCheckpointDir("postdur");
  {
    const ScopedEnv kill("FIXY_SHARD_KILL", "0:post-checkpoint");
    ShardOptions cold = BaseOptions(1, checkpoint_dir);
    cold.max_attempts = 1;
    const auto killed = Run(cold);
    ASSERT_TRUE(killed.ok()) << killed.status();
    // The worker died after the rename, so the coordinator counts the
    // shard failed — but its checkpoint is valid on disk.
    ASSERT_EQ(killed->shards_quarantined, 1u);
  }
  ShardOptions resume = BaseOptions(1, checkpoint_dir);
  resume.resume = true;
  const auto resumed = Run(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  // All kScenes checkpoints reused: the killed shard's durable work
  // included.
  EXPECT_EQ(resumed->checkpoints_reused, kScenes);
  EXPECT_EQ(EncodeMultiAppReport(resumed->merged), *reference_bytes_);
}

// A permanently failing shard is quarantined after K attempts with
// backoff while every healthy shard completes; only all-shards-failing
// makes the run useless (all_failed).
TEST_F(ShardKillResumeTest, PermanentFailureQuarantinesAfterKAttempts) {
  const ScopedEnv kill("FIXY_SHARD_KILL", "3:pre-rank");  // every attempt
  ShardOptions options = BaseOptions(2, FreshCheckpointDir("quarantine"));
  options.max_attempts = 3;
  const auto run = Run(options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->shards_quarantined, 1u);
  EXPECT_EQ(run->shards_completed, kScenes - 1);
  EXPECT_TRUE(run->shards[3].quarantined);
  EXPECT_EQ(run->shards[3].attempts, 3);
  EXPECT_FALSE(run->shards[3].status.ok());
  EXPECT_FALSE(run->all_failed());
  // The quarantined shard's scene carries an error outcome naming the
  // shard, like a quarantined scene in a keep-going batch.
  const SceneOutcome& outcome = run->merged.reports[0].outcomes[3];
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_NE(outcome.scene_name, "");
}

// A wedged worker (hangs forever, heartbeats never start) is detected by
// the heartbeat timeout, killed, and retried/quarantined — the run never
// hangs.
TEST_F(ShardKillResumeTest, WedgedWorkerIsKilledByHeartbeatTimeout) {
  const ScopedEnv hang("FIXY_SHARD_HANG", "4");  // every attempt
  ShardOptions options = BaseOptions(2, FreshCheckpointDir("wedge"));
  options.max_attempts = 2;
  options.heartbeat_timeout_ms = 300;
  const auto run = Run(options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->shards_quarantined, 1u);
  EXPECT_TRUE(run->shards[4].quarantined);
  EXPECT_EQ(run->shards[4].attempts, 2);
  EXPECT_EQ(run->shards_completed, kScenes - 1);
}

// Every shard failing — the worker binary is a lie — yields all_failed
// (the CLI maps this to a non-zero exit) but still a structured report.
TEST_F(ShardKillResumeTest, AllShardsFailingIsAllFailed) {
  ShardOptions options = BaseOptions(2, FreshCheckpointDir("allfail"));
  options.worker_binary = "/nonexistent/fixy/worker";
  options.max_attempts = 2;
  const auto run = Run(options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->shards_quarantined, kScenes);
  EXPECT_TRUE(run->all_failed());
  for (const ShardOutcome& shard : run->shards) {
    EXPECT_FALSE(shard.status.ok());
  }
}

#endif  // FIXY_CLI_PATH && FIXY_SHARD_TEST_HAVE_FORK

}  // namespace
}  // namespace fixy::shard
