// Tests for src/geometry: vectors, boxes, polygon clipping, IoU — golden
// values plus parameterized property sweeps (symmetry, bounds, identity).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geometry/box.h"
#include "geometry/iou.h"
#include "geometry/polygon.h"
#include "geometry/vec.h"

namespace fixy::geom {
namespace {

constexpr double kEps = 1e-9;

// ------------------------------------------------------------------ Vec

TEST(VecTest, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(VecTest, DotAndCross) {
  const Vec2 x{1.0, 0.0};
  const Vec2 y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(x.Dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.Cross(y), 1.0);
  EXPECT_DOUBLE_EQ(y.Cross(x), -1.0);
}

TEST(VecTest, NormAndSquaredNorm) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
}

TEST(VecTest, RotationQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.Rotated(M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, kEps);
  EXPECT_NEAR(r.y, 1.0, kEps);
}

TEST(VecTest, RotationPreservesNorm) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Vec2 v{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const double angle = rng.Uniform(0, 2 * M_PI);
    EXPECT_NEAR(v.Rotated(angle).Norm(), v.Norm(), 1e-9);
  }
}

TEST(Vec3Test, BasicOps) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_DOUBLE_EQ(a.Dot(b), 32.0);
  EXPECT_EQ(a.Xy(), Vec2(1, 2));
}

// ------------------------------------------------------------------ Box

TEST(BoxTest, VolumeAndArea) {
  const Box3d box({0, 0, 1}, 4.0, 2.0, 1.5, 0.0);
  EXPECT_DOUBLE_EQ(box.Volume(), 12.0);
  EXPECT_DOUBLE_EQ(box.BevArea(), 8.0);
}

TEST(BoxTest, Validity) {
  EXPECT_TRUE(Box3d({0, 0, 0}, 1, 1, 1, 0).IsValid());
  EXPECT_FALSE(Box3d({0, 0, 0}, 0, 1, 1, 0).IsValid());
  EXPECT_FALSE(Box3d().IsValid());
}

TEST(BoxTest, AxisAlignedCorners) {
  const Box3d box({0, 0, 0}, 4.0, 2.0, 1.0, 0.0);
  const auto corners = box.BevCorners();
  EXPECT_NEAR(corners[0].x, 2.0, kEps);
  EXPECT_NEAR(corners[0].y, 1.0, kEps);
  EXPECT_NEAR(corners[2].x, -2.0, kEps);
  EXPECT_NEAR(corners[2].y, -1.0, kEps);
}

TEST(BoxTest, RotatedCornersStayAtRadius) {
  const Box3d box({5, 5, 0}, 4.0, 2.0, 1.0, 0.7);
  const double radius = std::sqrt(4.0 + 1.0);  // half-diagonal
  for (const Vec2& corner : box.BevCorners()) {
    EXPECT_NEAR((corner - Vec2{5, 5}).Norm(), radius, kEps);
  }
}

TEST(BoxTest, ZExtent) {
  const Box3d box({0, 0, 2.0}, 1, 1, 3.0, 0);
  EXPECT_DOUBLE_EQ(box.ZMin(), 0.5);
  EXPECT_DOUBLE_EQ(box.ZMax(), 3.5);
}

TEST(BoxTest, BevContains) {
  const Box3d box({0, 0, 0}, 4.0, 2.0, 1.0, 0.0);
  EXPECT_TRUE(box.BevContains({0, 0}));
  EXPECT_TRUE(box.BevContains({1.9, 0.9}));
  EXPECT_FALSE(box.BevContains({2.1, 0}));
  EXPECT_FALSE(box.BevContains({0, 1.1}));
}

TEST(BoxTest, BevContainsRotated) {
  const Box3d box({0, 0, 0}, 4.0, 2.0, 1.0, M_PI / 2.0);
  // After a quarter turn, length lies along y.
  EXPECT_TRUE(box.BevContains({0, 1.9}));
  EXPECT_FALSE(box.BevContains({1.9, 0}));
}

TEST(BoxTest, CenterDistance) {
  const Box3d box({3, 4, 0}, 1, 1, 1, 0);
  EXPECT_DOUBLE_EQ(box.BevCenterDistance({0, 0}), 5.0);
}

// -------------------------------------------------------------- Polygon

ConvexPolygon UnitSquare() {
  return ConvexPolygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PolygonTest, AreaOfSquare) {
  EXPECT_DOUBLE_EQ(UnitSquare().Area(), 1.0);
}

TEST(PolygonTest, SignedAreaPositiveForCcw) {
  EXPECT_GT(UnitSquare().SignedArea(), 0.0);
}

TEST(PolygonTest, EmptyAndDegenerate) {
  EXPECT_TRUE(ConvexPolygon().empty());
  EXPECT_TRUE(ConvexPolygon({{0, 0}, {1, 1}}).empty());
  EXPECT_DOUBLE_EQ(ConvexPolygon({{0, 0}, {1, 1}}).Area(), 0.0);
}

TEST(PolygonTest, SelfIntersectionIsIdentity) {
  const ConvexPolygon square = UnitSquare();
  EXPECT_NEAR(square.Intersect(square).Area(), 1.0, 1e-9);
}

TEST(PolygonTest, HalfOverlapSquares) {
  const ConvexPolygon a = UnitSquare();
  const ConvexPolygon b({{0.5, 0}, {1.5, 0}, {1.5, 1}, {0.5, 1}});
  EXPECT_NEAR(a.Intersect(b).Area(), 0.5, 1e-9);
}

TEST(PolygonTest, DisjointSquares) {
  const ConvexPolygon a = UnitSquare();
  const ConvexPolygon b({{2, 2}, {3, 2}, {3, 3}, {2, 3}});
  EXPECT_TRUE(a.Intersect(b).empty());
  EXPECT_DOUBLE_EQ(a.Intersect(b).Area(), 0.0);
}

TEST(PolygonTest, ContainedSquare) {
  const ConvexPolygon outer({{-2, -2}, {2, -2}, {2, 2}, {-2, 2}});
  const ConvexPolygon inner = UnitSquare();
  EXPECT_NEAR(outer.Intersect(inner).Area(), 1.0, 1e-9);
  EXPECT_NEAR(inner.Intersect(outer).Area(), 1.0, 1e-9);
}

TEST(PolygonTest, DiamondSquareIntersection) {
  // A unit-area diamond centered in a 2x2 square: fully contained.
  const ConvexPolygon square({{-1, -1}, {1, -1}, {1, 1}, {-1, 1}});
  const ConvexPolygon diamond(
      {{0.0, -0.5}, {0.5, 0.0}, {0.0, 0.5}, {-0.5, 0.0}});
  EXPECT_NEAR(square.Intersect(diamond).Area(), 0.5, 1e-9);
}

TEST(PolygonTest, IntersectionIsCommutativeInArea) {
  Rng rng(71);
  for (int i = 0; i < 50; ++i) {
    const Box3d a({rng.Uniform(-2, 2), rng.Uniform(-2, 2), 0},
                  rng.Uniform(0.5, 4), rng.Uniform(0.5, 3), 1.0,
                  rng.Uniform(0, 2 * M_PI));
    const Box3d b({rng.Uniform(-2, 2), rng.Uniform(-2, 2), 0},
                  rng.Uniform(0.5, 4), rng.Uniform(0.5, 3), 1.0,
                  rng.Uniform(0, 2 * M_PI));
    const double ab = BoxBevPolygon(a).Intersect(BoxBevPolygon(b)).Area();
    const double ba = BoxBevPolygon(b).Intersect(BoxBevPolygon(a)).Area();
    EXPECT_NEAR(ab, ba, 1e-8);
  }
}

// ------------------------------------------------------------------ IoU

TEST(IouTest, IdenticalBoxes) {
  const Box3d box({1, 2, 0.5}, 4, 2, 1, 0.3);
  EXPECT_NEAR(BevIou(box, box), 1.0, 1e-9);
  EXPECT_NEAR(Iou3d(box, box), 1.0, 1e-9);
}

TEST(IouTest, DisjointBoxes) {
  const Box3d a({0, 0, 0.5}, 2, 2, 1, 0);
  const Box3d b({10, 0, 0.5}, 2, 2, 1, 0);
  EXPECT_DOUBLE_EQ(BevIou(a, b), 0.0);
  EXPECT_DOUBLE_EQ(Iou3d(a, b), 0.0);
}

TEST(IouTest, HalfOverlapGolden) {
  // Two 2x2 squares offset by 1 along x: intersection 2, union 6.
  const Box3d a({0, 0, 0.5}, 2, 2, 1, 0);
  const Box3d b({1, 0, 0.5}, 2, 2, 1, 0);
  EXPECT_NEAR(BevIou(a, b), 2.0 / 6.0, 1e-9);
}

TEST(IouTest, RotationInvarianceOfIdenticalPairs) {
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const double yaw = rng.Uniform(0, 2 * M_PI);
    const Box3d a({0, 0, 0.5}, 4, 2, 1, yaw);
    EXPECT_NEAR(BevIou(a, a), 1.0, 1e-9);
  }
}

TEST(IouTest, Rotated45DegreeGolden) {
  // Unit square vs the same square rotated 45 degrees: intersection is a
  // regular octagon with area 2*(sqrt(2)-1) ~= 0.8284.
  const Box3d a({0, 0, 0.5}, 1, 1, 1, 0);
  const Box3d b({0, 0, 0.5}, 1, 1, 1, M_PI / 4.0);
  const double inter = 2.0 * (std::sqrt(2.0) - 1.0);
  const double uni = 2.0 - inter;
  EXPECT_NEAR(BevIou(a, b), inter / uni, 1e-6);
}

TEST(IouTest, DegenerateBoxGivesZero) {
  const Box3d degenerate({0, 0, 0}, 0, 2, 1, 0);
  const Box3d box({0, 0, 0.5}, 2, 2, 1, 0);
  EXPECT_DOUBLE_EQ(BevIou(degenerate, box), 0.0);
  EXPECT_DOUBLE_EQ(Iou3d(degenerate, box), 0.0);
}

TEST(IouTest, VerticalSeparationZerosIou3d) {
  const Box3d low({0, 0, 0.5}, 2, 2, 1, 0);
  const Box3d high({0, 0, 5.0}, 2, 2, 1, 0);
  EXPECT_NEAR(BevIou(low, high), 1.0, 1e-9);  // same footprint
  EXPECT_DOUBLE_EQ(Iou3d(low, high), 0.0);    // no vertical overlap
}

TEST(IouTest, PartialVerticalOverlap) {
  // Same footprint, half vertical overlap: inter = 4*0.5 = 2, union =
  // 4 + 4 - 2 = 6.
  const Box3d a({0, 0, 0.5}, 2, 2, 1, 0);
  const Box3d b({0, 0, 1.0}, 2, 2, 1, 0);
  EXPECT_NEAR(Iou3d(a, b), 2.0 / 6.0, 1e-9);
}

// Property sweep: IoU is symmetric, bounded, and 3D IoU never exceeds BEV
// IoU for gravity-aligned boxes of equal height range.
class IouPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IouPropertyTest, SymmetricAndBounded) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const Box3d a({rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                   rng.Uniform(0, 2)},
                  rng.Uniform(0.3, 6), rng.Uniform(0.3, 3),
                  rng.Uniform(0.5, 3), rng.Uniform(0, 2 * M_PI));
    const Box3d b({rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                   rng.Uniform(0, 2)},
                  rng.Uniform(0.3, 6), rng.Uniform(0.3, 3),
                  rng.Uniform(0.5, 3), rng.Uniform(0, 2 * M_PI));
    const double bev = BevIou(a, b);
    const double full = Iou3d(a, b);
    EXPECT_GE(bev, 0.0);
    EXPECT_LE(bev, 1.0);
    EXPECT_GE(full, 0.0);
    EXPECT_LE(full, 1.0);
    EXPECT_NEAR(bev, BevIou(b, a), 1e-8);
    EXPECT_NEAR(full, Iou3d(b, a), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: translating both boxes together leaves IoU unchanged.
class IouTranslationTest : public ::testing::TestWithParam<double> {};

TEST_P(IouTranslationTest, TranslationInvariant) {
  const double shift = GetParam();
  const Box3d a({0, 0, 0.5}, 4, 2, 1, 0.4);
  const Box3d b({1, 0.5, 0.5}, 3, 2, 1, 0.9);
  Box3d a2 = a;
  Box3d b2 = b;
  a2.center.x += shift;
  a2.center.y -= shift;
  b2.center.x += shift;
  b2.center.y -= shift;
  EXPECT_NEAR(BevIou(a, b), BevIou(a2, b2), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shifts, IouTranslationTest,
                         ::testing::Values(-100.0, -1.5, 0.0, 2.5, 1000.0));

}  // namespace
}  // namespace fixy::geom
