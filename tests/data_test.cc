// Tests for src/data: enums, observations, scenes (incl. validation
// failure injection), bundles, and tracks.
#include <gtest/gtest.h>

#include <limits>

#include "data/observation.h"
#include "data/scene.h"
#include "data/track.h"
#include "data/types.h"

namespace fixy {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source,
                    ObjectClass cls, double x, double y, int frame,
                    double confidence = 1.0) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = cls;
  obs.box = geom::Box3d({x, y, 0.85}, 4.5, 1.9, 1.7, 0.0);
  obs.frame_index = frame;
  obs.timestamp = frame * 0.1;
  obs.confidence = confidence;
  return obs;
}

// ---------------------------------------------------------------- Types

TEST(TypesTest, ObjectClassRoundTrip) {
  for (ObjectClass cls : kAllObjectClasses) {
    const auto parsed = ObjectClassFromString(ObjectClassToString(cls));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, cls);
  }
}

TEST(TypesTest, ObjectClassFromStringRejectsUnknown) {
  EXPECT_FALSE(ObjectClassFromString("bicycle").ok());
  EXPECT_FALSE(ObjectClassFromString("").ok());
}

TEST(TypesTest, ObservationSourceRoundTrip) {
  for (int i = 0; i < kNumObservationSources; ++i) {
    const auto source = static_cast<ObservationSource>(i);
    const auto parsed =
        ObservationSourceFromString(ObservationSourceToString(source));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, source);
  }
  EXPECT_FALSE(ObservationSourceFromString("oracle").ok());
}

TEST(ObservationTest, ToStringMentionsKeyFields) {
  const Observation obs =
      MakeObs(17, ObservationSource::kModel, ObjectClass::kCar, 0, 0, 3, 0.91);
  const std::string s = obs.ToString();
  EXPECT_NE(s.find("17"), std::string::npos);
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("car"), std::string::npos);
}

// ---------------------------------------------------------------- Scene

Scene MakeValidScene(int frames = 3) {
  Scene scene("test", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < frames; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.ego_position = {f * 0.8, 0.0};
    frame.observations.push_back(MakeObs(
        id++, ObservationSource::kHuman, ObjectClass::kCar, 10.0 + f, 2, f));
    frame.observations.push_back(MakeObs(id++, ObservationSource::kModel,
                                         ObjectClass::kCar, 10.05 + f, 2.02,
                                         f, 0.9));
    scene.AddFrame(std::move(frame));
  }
  return scene;
}

TEST(SceneTest, BasicAccessors) {
  const Scene scene = MakeValidScene(5);
  EXPECT_EQ(scene.frame_count(), 5u);
  EXPECT_DOUBLE_EQ(scene.frame_rate_hz(), 10.0);
  EXPECT_NEAR(scene.DurationSeconds(), 0.4, 1e-12);
  EXPECT_EQ(scene.TotalObservations(), 10u);
  EXPECT_EQ(scene.CountBySource(ObservationSource::kHuman), 5u);
  EXPECT_EQ(scene.CountBySource(ObservationSource::kModel), 5u);
  EXPECT_EQ(scene.CountBySource(ObservationSource::kAuditor), 0u);
}

TEST(SceneTest, EmptySceneDuration) {
  const Scene scene("empty", 10.0);
  EXPECT_DOUBLE_EQ(scene.DurationSeconds(), 0.0);
  EXPECT_EQ(scene.TotalObservations(), 0u);
}

TEST(SceneTest, ValidSceneValidates) {
  EXPECT_TRUE(MakeValidScene().Validate().ok());
}

TEST(SceneValidateTest, RejectsBadFrameIndex) {
  Scene scene = MakeValidScene();
  scene.frames()[1].index = 5;
  EXPECT_EQ(scene.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(SceneValidateTest, RejectsDecreasingTimestamps) {
  Scene scene = MakeValidScene();
  scene.frames()[2].timestamp = 0.0;
  scene.frames()[1].timestamp = 0.5;
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsFrameIndexMismatchInObservation) {
  Scene scene = MakeValidScene();
  scene.frames()[0].observations[0].frame_index = 2;
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsDuplicateObservationIds) {
  Scene scene = MakeValidScene();
  scene.frames()[1].observations[0].id =
      scene.frames()[0].observations[0].id;
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsInvalidObservationId) {
  Scene scene = MakeValidScene();
  scene.frames()[0].observations[0].id = kInvalidObservationId;
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsDegenerateBox) {
  Scene scene = MakeValidScene();
  scene.frames()[0].observations[0].box.width = 0.0;
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsOutOfRangeConfidence) {
  Scene scene = MakeValidScene();
  scene.frames()[0].observations[0].confidence = 1.5;
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsNanConfidence) {
  Scene scene = MakeValidScene();
  scene.frames()[0].observations[0].confidence =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsNonFiniteBoxFields) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  {
    Scene scene = MakeValidScene();
    scene.frames()[0].observations[0].box.center.x = kNan;
    EXPECT_FALSE(scene.Validate().ok());
  }
  {
    Scene scene = MakeValidScene();
    scene.frames()[0].observations[0].box.length = kInf;
    EXPECT_FALSE(scene.Validate().ok());
  }
  {
    Scene scene = MakeValidScene();
    scene.frames()[0].observations[0].box.yaw = -kInf;
    EXPECT_FALSE(scene.Validate().ok());
  }
}

TEST(SceneValidateTest, RejectsNegativeBoxExtent) {
  Scene scene = MakeValidScene();
  scene.frames()[0].observations[0].box.height = -1.0;
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsNanFrameTimestamp) {
  Scene scene = MakeValidScene();
  scene.frames()[1].timestamp = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(SceneValidateTest, RejectsNonFiniteEgoPose) {
  {
    Scene scene = MakeValidScene();
    scene.frames()[0].ego_position.x =
        std::numeric_limits<double>::infinity();
    EXPECT_FALSE(scene.Validate().ok());
  }
  {
    Scene scene = MakeValidScene();
    scene.frames()[0].ego_yaw = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(scene.Validate().ok());
  }
}

TEST(SceneValidateTest, RejectsNonFiniteFrameRate) {
  {
    Scene scene = MakeValidScene();
    scene.set_frame_rate_hz(std::numeric_limits<double>::quiet_NaN());
    EXPECT_FALSE(scene.Validate().ok());
  }
  {
    Scene scene = MakeValidScene();
    scene.set_frame_rate_hz(0.0);
    EXPECT_FALSE(scene.Validate().ok());
  }
}

TEST(SceneValidateTest, RejectsNanObservationTimestamp) {
  Scene scene = MakeValidScene();
  scene.frames()[0].observations[0].timestamp =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(scene.Validate().ok());
}

TEST(DatasetTest, TotalObservationsSumsScenes) {
  Dataset dataset;
  dataset.scenes.push_back(MakeValidScene(2));
  dataset.scenes.push_back(MakeValidScene(3));
  EXPECT_EQ(dataset.TotalObservations(), 10u);
}

// --------------------------------------------------------------- Bundle

ObservationBundle MakeBundle(int frame, std::vector<Observation> obs) {
  ObservationBundle bundle;
  bundle.frame_index = frame;
  bundle.timestamp = frame * 0.1;
  bundle.ego_position = {0, 0};
  bundle.observations = std::move(obs);
  return bundle;
}

TEST(BundleTest, SourceQueries) {
  const auto bundle = MakeBundle(
      0, {MakeObs(1, ObservationSource::kHuman, ObjectClass::kCar, 1, 0, 0),
          MakeObs(2, ObservationSource::kModel, ObjectClass::kCar, 1, 0, 0,
                  0.8)});
  EXPECT_TRUE(bundle.HasSource(ObservationSource::kHuman));
  EXPECT_TRUE(bundle.HasSource(ObservationSource::kModel));
  EXPECT_FALSE(bundle.HasSource(ObservationSource::kAuditor));
  ASSERT_NE(bundle.FindBySource(ObservationSource::kModel), nullptr);
  EXPECT_EQ(bundle.FindBySource(ObservationSource::kModel)->id, 2u);
  EXPECT_EQ(bundle.FindBySource(ObservationSource::kAuditor), nullptr);
}

TEST(BundleTest, MeanCenterAveragesBoxes) {
  const auto bundle = MakeBundle(
      0, {MakeObs(1, ObservationSource::kHuman, ObjectClass::kCar, 0, 0, 0),
          MakeObs(2, ObservationSource::kModel, ObjectClass::kCar, 2, 4, 0)});
  const geom::Vec3 center = bundle.MeanCenter();
  EXPECT_DOUBLE_EQ(center.x, 1.0);
  EXPECT_DOUBLE_EQ(center.y, 2.0);
}

TEST(BundleTest, MaxConfidence) {
  const auto bundle = MakeBundle(
      0,
      {MakeObs(1, ObservationSource::kModel, ObjectClass::kCar, 0, 0, 0, 0.4),
       MakeObs(2, ObservationSource::kModel, ObjectClass::kCar, 0, 0, 0,
               0.9)});
  EXPECT_DOUBLE_EQ(bundle.MaxConfidence(), 0.9);
}

TEST(BundleTest, EmptyBundle) {
  const ObservationBundle bundle;
  EXPECT_TRUE(bundle.empty());
  EXPECT_DOUBLE_EQ(bundle.MaxConfidence(), 0.0);
}

// ---------------------------------------------------------------- Track

Track MakeTrack(TrackId id, int num_bundles,
                ObservationSource source = ObservationSource::kModel,
                double confidence = 0.8) {
  Track track(id);
  ObservationId obs_id = id * 1000 + 1;
  for (int b = 0; b < num_bundles; ++b) {
    track.AddBundle(MakeBundle(
        b, {MakeObs(obs_id++, source, ObjectClass::kCar, 10.0 + b, 2, b,
                    confidence)}));
  }
  return track;
}

TEST(TrackTest, BasicAccessors) {
  const Track track = MakeTrack(7, 4);
  EXPECT_EQ(track.id(), 7u);
  EXPECT_EQ(track.size(), 4u);
  EXPECT_EQ(track.TotalObservations(), 4u);
  EXPECT_EQ(track.FirstFrame(), 0);
  EXPECT_EQ(track.LastFrame(), 3);
  EXPECT_NEAR(track.DurationSeconds(), 0.3, 1e-12);
}

TEST(TrackTest, EmptyTrack) {
  const Track track;
  EXPECT_TRUE(track.empty());
  EXPECT_FALSE(track.MajorityClass().has_value());
  EXPECT_FALSE(track.MeanModelConfidence().has_value());
  EXPECT_DOUBLE_EQ(track.DurationSeconds(), 0.0);
}

TEST(TrackTest, HasSource) {
  const Track model_track = MakeTrack(1, 3, ObservationSource::kModel);
  EXPECT_TRUE(model_track.HasSource(ObservationSource::kModel));
  EXPECT_FALSE(model_track.HasSource(ObservationSource::kHuman));
}

TEST(TrackTest, MajorityClassPicksMostCommon) {
  Track track(1);
  track.AddBundle(MakeBundle(0, {MakeObs(1, ObservationSource::kHuman,
                                         ObjectClass::kTruck, 0, 0, 0)}));
  track.AddBundle(MakeBundle(1, {MakeObs(2, ObservationSource::kHuman,
                                         ObjectClass::kCar, 0, 0, 1)}));
  track.AddBundle(MakeBundle(2, {MakeObs(3, ObservationSource::kHuman,
                                         ObjectClass::kTruck, 0, 0, 2)}));
  EXPECT_EQ(track.MajorityClass(), ObjectClass::kTruck);
}

TEST(TrackTest, MeanModelConfidence) {
  Track track(1);
  track.AddBundle(MakeBundle(
      0, {MakeObs(1, ObservationSource::kModel, ObjectClass::kCar, 0, 0, 0,
                  0.6),
          MakeObs(2, ObservationSource::kHuman, ObjectClass::kCar, 0, 0,
                  0)}));
  track.AddBundle(MakeBundle(1, {MakeObs(3, ObservationSource::kModel,
                                         ObjectClass::kCar, 0, 0, 1, 0.8)}));
  ASSERT_TRUE(track.MeanModelConfidence().has_value());
  EXPECT_NEAR(*track.MeanModelConfidence(), 0.7, 1e-12);
}

TEST(TrackTest, MinEgoDistance) {
  Track track(1);
  ObservationBundle near = MakeBundle(
      0, {MakeObs(1, ObservationSource::kModel, ObjectClass::kCar, 3, 4, 0)});
  ObservationBundle far = MakeBundle(
      1, {MakeObs(2, ObservationSource::kModel, ObjectClass::kCar, 30, 40,
                  1)});
  track.AddBundle(std::move(near));
  track.AddBundle(std::move(far));
  EXPECT_DOUBLE_EQ(track.MinEgoDistance(), 5.0);
}

TEST(TrackTest, ToStringMentionsClassAndSpan) {
  const Track track = MakeTrack(3, 2);
  const std::string s = track.ToString();
  EXPECT_NE(s.find("car"), std::string::npos);
  EXPECT_NE(s.find("[0..1]"), std::string::npos);
}

}  // namespace
}  // namespace fixy
