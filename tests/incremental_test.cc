// The incremental-ingestion contracts (DESIGN.md §14):
//
//   1. UpdateFxbCache is byte-identical to a from-scratch BuildFxbCache
//      at every point of a randomized add/modify/touch/remove sequence.
//   2. Learn-then-fold (Fixy::LearnIncremental) is byte-identical to a
//      full refit over the concatenated dataset, for every estimator —
//      including KDE past its reservoir capacity, because the reservoir's
//      counter-based subsampling resumes the exact stream.
//   3. The per-scene fingerprint ladder: a same-size edit is caught by
//      its nanosecond mtime; a same-size edit with a *restored* mtime is
//      the stat pass's documented blind spot and is caught by the
//      content-verifying staleness pass.
//   4. Corrupted caches (including records that lie about their source)
//      never crash the incremental path — they degrade to re-encodes or
//      a full rebuild.
//   5. `watch` survives a seeded corruption sweep with zero crashes, and
//      folds + re-ranks exactly the changed scenes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/engine.h"
#include "core/model_io.h"
#include "daemon/watch.h"
#include "io/fxb.h"
#include "io/scene_io.h"
#include "obs/metrics.h"
#include "sim/generate.h"
#include "stats/sufficient.h"
#include "testing/document_corruptor.h"

namespace fixy {
namespace {

namespace fs = std::filesystem;

std::string TempDir() {
  static int counter = 0;
  const std::string dir =
      (fs::temp_directory_path() /
       ("fixy_incremental_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << path;
  out << bytes;
}

/// A labeled dataset realistic enough for the learner (the sim injects
/// human + model observations with per-class distributions).
Dataset MakeLabeledDataset(int scenes, uint64_t seed) {
  const sim::SimProfile profile = sim::LyftLikeProfile();
  return sim::GenerateDataset(profile, "inc", scenes, seed).dataset;
}

/// Splits `dataset` at `head`: scenes [0, head) stay, the rest return.
Dataset SplitTail(Dataset& dataset, size_t head) {
  Dataset tail;
  tail.name = dataset.name;
  for (size_t i = head; i < dataset.scenes.size(); ++i) {
    tail.scenes.push_back(std::move(dataset.scenes[i]));
  }
  dataset.scenes.resize(head);
  return tail;
}

// ---------------------------------------------------------------------------
// 1. Randomized edit sequences: update == rebuild, byte for byte.
// ---------------------------------------------------------------------------

TEST(IncrementalCacheTest, RandomizedEditsMatchRebuildByteForByte) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(4, 17);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());

  std::mt19937_64 rng(991);
  int next_scene = 100;
  for (int step = 0; step < 12; ++step) {
    const int op = static_cast<int>(rng() % 4);
    std::string what;
    if (op == 0 || dataset.scenes.size() < 2) {
      // Add a scene (also the fallback so the dataset never empties).
      Dataset fresh = MakeLabeledDataset(1, 1000 + next_scene);
      fresh.scenes.front().set_name("added_" + std::to_string(next_scene++));
      dataset.scenes.push_back(std::move(fresh.scenes.front()));
      ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
      what = "add";
    } else if (op == 1) {
      // Modify one scene surgically (only its file is rewritten, so every
      // other file keeps its stat record and takes the fast path).
      const size_t victim = rng() % dataset.scenes.size();
      Scene& scene = dataset.scenes[victim];
      ASSERT_TRUE(io::SaveScene(
                      scene, dir + "/" + scene.name() + ".fixy.json")
                      .ok());
      what = "touch " + scene.name();
      // Half the time actually change the content, not just the mtime.
      if (rng() % 2 == 0) {
        Dataset fresh = MakeLabeledDataset(1, 2000 + step);
        fresh.scenes.front().set_name(scene.name());
        scene = std::move(fresh.scenes.front());
        ASSERT_TRUE(io::SaveScene(
                        scene, dir + "/" + scene.name() + ".fixy.json")
                        .ok());
        what = "modify " + scene.name();
      }
    } else if (op == 2) {
      // Remove a scene. SaveDataset rewrites the manifest; the orphaned
      // .fixy.json stays on disk and must not confuse the updater.
      const size_t victim = rng() % dataset.scenes.size();
      dataset.scenes.erase(dataset.scenes.begin() +
                           static_cast<long>(victim));
      ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
      what = "remove";
    } else {
      // Rewrite everything (SaveDataset bumps every mtime; unchanged
      // files must still reuse their sections via the checksum fallback).
      ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
      what = "rewrite-all";
    }

    const auto update = io::UpdateFxbCache(dir);
    ASSERT_TRUE(update.ok()) << "step " << step << " (" << what
                             << "): " << update.status();
    const std::string updated = ReadFile(io::FxbCachePath(dir));

    fs::remove(io::FxbCachePath(dir));
    ASSERT_TRUE(io::BuildFxbCache(dir).ok()) << "step " << step;
    const std::string rebuilt = ReadFile(io::FxbCachePath(dir));

    ASSERT_EQ(updated, rebuilt)
        << "step " << step << " (" << what
        << "): incremental update diverged from a from-scratch build";
  }
}

TEST(IncrementalCacheTest, OneSceneEditReencodesExactlyOneScene) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(6, 21);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());

  Dataset fresh = MakeLabeledDataset(1, 777);
  fresh.scenes.front().set_name(dataset.scenes[2].name());
  dataset.scenes[2] = std::move(fresh.scenes.front());
  ASSERT_TRUE(io::SaveScene(dataset.scenes[2],
                            dir + "/" + dataset.scenes[2].name() +
                                ".fixy.json")
                  .ok());

  const auto update = io::UpdateFxbCache(dir);
  ASSERT_TRUE(update.ok()) << update.status();
  EXPECT_EQ(update->scenes_total, 6u);
  EXPECT_EQ(update->scenes_encoded, 1u);
  EXPECT_EQ(update->scenes_reused, 5u);
  EXPECT_EQ(update->scenes_dropped, 0u);
  EXPECT_FALSE(update->rebuilt);
  ASSERT_EQ(update->encoded_files.size(), 1u);
  EXPECT_EQ(update->encoded_files.front(),
            dataset.scenes[2].name() + ".fixy.json");
}

// ---------------------------------------------------------------------------
// 2. The fingerprint ladder: ns mtimes and the content-verify pass.
// ---------------------------------------------------------------------------

TEST(IncrementalCacheTest, SameSizeEditIsCaughtByMtime) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(2, 5);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());

  // Flip one byte in place: identical size, new mtime.
  const std::string victim =
      dir + "/" + dataset.scenes[0].name() + ".fixy.json";
  std::string bytes = ReadFile(victim);
  const size_t digit = bytes.find_first_of("123456789", bytes.find("\"x\""));
  ASSERT_NE(digit, std::string::npos);
  bytes[digit] = bytes[digit] == '3' ? '4' : '3';
  WriteFile(victim, bytes);

  const auto fresh = io::OpenFreshCache(dir);
  ASSERT_FALSE(fresh.ok());
  EXPECT_EQ(fresh.status().code(), StatusCode::kFailedPrecondition);

  const auto staleness = io::ExplainCacheStaleness(dir);
  ASSERT_TRUE(staleness.ok()) << staleness.status();
  EXPECT_TRUE(staleness->stale);

  // And the updater re-encodes exactly that scene, byte-identical to a
  // rebuild.
  const auto update = io::UpdateFxbCache(dir);
  ASSERT_TRUE(update.ok()) << update.status();
  EXPECT_EQ(update->scenes_encoded, 1u);
  const std::string updated = ReadFile(io::FxbCachePath(dir));
  fs::remove(io::FxbCachePath(dir));
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());
  EXPECT_EQ(updated, ReadFile(io::FxbCachePath(dir)));
}

TEST(IncrementalCacheTest, BackdatedSameSizeEditNeedsContentVerify) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(2, 9);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());

  const std::string victim =
      dir + "/" + dataset.scenes[1].name() + ".fixy.json";
  const fs::file_time_type recorded = fs::last_write_time(victim);
  std::string bytes = ReadFile(victim);
  const size_t digit = bytes.find_first_of("123456789", bytes.find("\"x\""));
  ASSERT_NE(digit, std::string::npos);
  bytes[digit] = bytes[digit] == '3' ? '4' : '3';
  WriteFile(victim, bytes);
  fs::last_write_time(victim, recorded);  // the adversarial restore

  // The stat-only pass trusts size + mtime — this is its documented
  // blind spot (the same one git's stat cache has).
  const auto shallow = io::ExplainCacheStaleness(dir);
  ASSERT_TRUE(shallow.ok()) << shallow.status();
  EXPECT_FALSE(shallow->stale);

  // The content-verifying pass reads and checksums every source.
  const auto deep = io::ExplainCacheStaleness(dir, /*verify_contents=*/true);
  ASSERT_TRUE(deep.ok()) << deep.status();
  EXPECT_TRUE(deep->stale);
  bool found = false;
  for (const std::string& reason : deep->reasons) {
    if (reason.find("different checksum") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << deep->Summary();
}

// ---------------------------------------------------------------------------
// 3. Corrupted caches degrade, never crash.
// ---------------------------------------------------------------------------

TEST(IncrementalCacheTest, SourceRecordLieReencodesTheLiedScene) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(3, 33);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());

  for (uint64_t seed = 0; seed < 10; ++seed) {
    const std::string pristine = ReadFile(io::FxbCachePath(dir));
    fixy::testing::DocumentCorruptor corruptor(seed);
    std::string detail;
    const std::string lied = corruptor.ApplyBinary(
        fixy::testing::BinaryCorruptionKind::kSourceRecordLie, pristine,
        &detail);
    WriteFile(io::FxbCachePath(dir), lied);

    // The lie re-seals every CRC, so the container opens; the staleness
    // diff must flag the lied-about record rather than trust it.
    const auto staleness = io::ExplainCacheStaleness(dir);
    ASSERT_TRUE(staleness.ok()) << detail << ": " << staleness.status();
    EXPECT_TRUE(staleness->stale) << detail;

    // The updater treats the scene as changed (its recorded stat no
    // longer matches disk), re-encodes it, and converges byte-for-byte
    // with a from-scratch build.
    const auto update = io::UpdateFxbCache(dir);
    ASSERT_TRUE(update.ok()) << detail << ": " << update.status();
    const std::string updated = ReadFile(io::FxbCachePath(dir));
    EXPECT_EQ(updated, pristine) << detail;
  }
}

TEST(IncrementalCacheTest, SourceMapFlipFallsBackToFullRebuild) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(3, 41);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());
  const std::string pristine = ReadFile(io::FxbCachePath(dir));

  fixy::testing::DocumentCorruptor corruptor(7);
  std::string detail;
  const std::string flipped = corruptor.ApplyBinary(
      fixy::testing::BinaryCorruptionKind::kSourceMapFlip, pristine, &detail);
  WriteFile(io::FxbCachePath(dir), flipped);

  // The source-map CRC rejects the container at open, so there is nothing
  // to reuse: the updater rebuilds from scratch.
  const auto update = io::UpdateFxbCache(dir);
  ASSERT_TRUE(update.ok()) << detail << ": " << update.status();
  EXPECT_TRUE(update->rebuilt) << detail;
  EXPECT_EQ(ReadFile(io::FxbCachePath(dir)), pristine) << detail;
}

// ---------------------------------------------------------------------------
// 4. Merge-vs-refit: fold(delta) == full refit, byte for byte.
// ---------------------------------------------------------------------------

class MergeRefitTest : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(MergeRefitTest, FoldMatchesFullRefitByteForByte) {
  Dataset full = MakeLabeledDataset(4, 55);
  Dataset head = full;  // deep copy
  Dataset tail = SplitTail(head, 3);

  FixyOptions options;
  options.learner.estimator = GetParam();

  const std::string dir = TempDir();
  const std::string refit_path = dir + "/refit.json";
  const std::string folded_path = dir + "/folded.json";

  Fixy refit(options);
  ASSERT_TRUE(refit.Learn(full).ok());
  ASSERT_TRUE(refit.SaveModel(refit_path).ok());

  Fixy folded(options);
  ASSERT_TRUE(folded.Learn(head).ok());
  ASSERT_TRUE(folded.supports_incremental_learning());
  ASSERT_TRUE(folded.LearnIncremental(tail).ok());
  ASSERT_TRUE(folded.SaveModel(folded_path).ok());

  EXPECT_EQ(ReadFile(refit_path), ReadFile(folded_path))
      << "estimator " << EstimatorKindToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, MergeRefitTest,
                         ::testing::Values(EstimatorKind::kKde,
                                           EstimatorKind::kHistogram,
                                           EstimatorKind::kGaussian,
                                           EstimatorKind::kCategorical),
                         [](const auto& info) {
                           return std::string(
                               EstimatorKindToString(info.param));
                         });

TEST(MergeRefitCapacityTest, KdeFoldMatchesRefitPastReservoirCapacity) {
  // A tiny reservoir forces the KDE to subsample. The counter-based
  // reservoir resumes the exact subsampling stream across the fold, so
  // fold-vs-refit stays byte-identical even past capacity (the *bounded
  // divergence* documented in DESIGN.md §14 is vs. the exact full-sample
  // KDE, not between the two incremental paths).
  Dataset full = MakeLabeledDataset(4, 63);
  Dataset head = full;
  Dataset tail = SplitTail(head, 2);

  FixyOptions options;
  options.learner.estimator = EstimatorKind::kKde;
  options.learner.kde_reservoir_capacity = 16;
  options.learner.kde_reservoir_seed = 4242;

  const std::string dir = TempDir();
  Fixy refit(options);
  ASSERT_TRUE(refit.Learn(full).ok());
  ASSERT_TRUE(refit.SaveModel(dir + "/refit.json").ok());

  Fixy folded(options);
  ASSERT_TRUE(folded.Learn(head).ok());
  ASSERT_TRUE(folded.LearnIncremental(tail).ok());
  ASSERT_TRUE(folded.SaveModel(dir + "/folded.json").ok());

  EXPECT_EQ(ReadFile(dir + "/refit.json"), ReadFile(dir + "/folded.json"));
}

TEST(MergeRefitTest, FoldSurvivesModelSaveLoadRoundTrip) {
  Dataset full = MakeLabeledDataset(3, 71);
  Dataset head = full;
  Dataset tail = SplitTail(head, 2);

  const std::string dir = TempDir();
  Fixy direct;
  ASSERT_TRUE(direct.Learn(head).ok());
  ASSERT_TRUE(direct.SaveModel(dir + "/head.json").ok());
  ASSERT_TRUE(direct.LearnIncremental(tail).ok());
  ASSERT_TRUE(direct.SaveModel(dir + "/direct.json").ok());

  // Reload the head model in a fresh engine: the persisted sufficient
  // statistics must make the fold resume exactly where Learn left off.
  Fixy reloaded;
  ASSERT_TRUE(reloaded.LoadModel(dir + "/head.json").ok());
  ASSERT_TRUE(reloaded.supports_incremental_learning());
  ASSERT_TRUE(reloaded.LearnIncremental(tail).ok());
  ASSERT_TRUE(reloaded.SaveModel(dir + "/reloaded.json").ok());

  EXPECT_EQ(ReadFile(dir + "/direct.json"), ReadFile(dir + "/reloaded.json"));
}

TEST(MergeRefitTest, StatsLessModelRejectsFold) {
  Dataset dataset = MakeLabeledDataset(2, 81);
  const std::string dir = TempDir();

  Fixy engine;
  ASSERT_TRUE(engine.Learn(dataset).ok());
  ASSERT_TRUE(engine.SaveModel(dir + "/with_stats.json").ok());

  // Strip the statistics by re-saving through the distributions-only
  // serializer (the pre-incremental format).
  const auto loaded = LoadLearnedModelWithStats(dir + "/with_stats.json",
                                                FeatureRegistry::Standard());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_stats());
  ASSERT_TRUE(
      SaveLearnedModel(loaded->distributions, dir + "/stats_less.json").ok());

  Fixy reloaded;
  ASSERT_TRUE(reloaded.LoadModel(dir + "/stats_less.json").ok());
  EXPECT_FALSE(reloaded.supports_incremental_learning());
  const Status fold = reloaded.LearnIncremental(dataset);
  EXPECT_EQ(fold.code(), StatusCode::kFailedPrecondition) << fold;
}

TEST(MergeRefitTest, FoldBeforeLearnFails) {
  Fixy engine;
  const Status fold = engine.LearnIncremental(MakeLabeledDataset(1, 91));
  EXPECT_EQ(fold.code(), StatusCode::kFailedPrecondition) << fold;
}

// ---------------------------------------------------------------------------
// 5. Sufficient-statistics primitives.
// ---------------------------------------------------------------------------

TEST(SufficientStatsTest, CountsMergeIsOrderFree) {
  stats::ValueCounts a, b, ab, ba;
  for (double x : {1.0, 2.0, 2.0, 3.0}) a.Add(x);
  for (double x : {3.0, 2.0, 5.0}) b.Add(x);
  ab = a;
  ab.Merge(b);
  ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.total, 7u);
  EXPECT_EQ(ab.Expand(), (std::vector<double>{1, 2, 2, 2, 3, 3, 5}));
}

TEST(SufficientStatsTest, ReservoirResumesTheExactStream) {
  constexpr uint64_t kCapacity = 8;
  stats::ValueReservoir one_shot;
  one_shot.capacity = kCapacity;
  one_shot.seed = 99;
  stats::ValueReservoir resumed = one_shot;
  for (int i = 0; i < 100; ++i) one_shot.Add(i * 0.5);
  for (int i = 0; i < 60; ++i) resumed.Add(i * 0.5);
  // "Persist" and continue: the counter-based subsampling depends only on
  // (seed, values-seen), so the resumed reservoir lands identically.
  stats::ValueReservoir reloaded = resumed;
  for (int i = 60; i < 100; ++i) reloaded.Add(i * 0.5);
  EXPECT_EQ(one_shot, reloaded);
  EXPECT_EQ(one_shot.items.size(), kCapacity);
  EXPECT_EQ(one_shot.seen, 100u);
}

TEST(SufficientStatsTest, ReservoirHoldsEverythingUnderCapacity) {
  stats::ValueReservoir reservoir;
  reservoir.capacity = 64;
  for (int i = 0; i < 50; ++i) reservoir.Add(static_cast<double>(i));
  ASSERT_EQ(reservoir.items.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(reservoir.items[static_cast<size_t>(i)], i);  // arrival order
  }
}

// ---------------------------------------------------------------------------
// 6. Streaming residency cap.
// ---------------------------------------------------------------------------

TEST(ResidencyTest, MaxResidentScenesBoundsThePeak) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(6, 13);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());

  Fixy engine;
  ASSERT_TRUE(engine.Learn(dataset).ok());

  for (const size_t limit : {size_t{1}, size_t{2}, size_t{0}}) {
    auto cache = io::OpenFreshCache(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    const io::FxbSceneSource source(std::move(*cache));
    BatchOptions batch;
    batch.num_threads = 2;
    batch.collect_metrics = true;
    StreamOptions stream;
    stream.decode_threads = 4;
    stream.max_resident_scenes = limit;
    const auto report = engine.RankDatasetStreaming(
        source, Application::kMissingTracks, batch, stream);
    ASSERT_TRUE(report.ok()) << report.status();
    const auto it = report->metrics.gauges.find("stream.resident_scenes_peak");
    ASSERT_NE(it, report->metrics.gauges.end());
    if (limit > 0) {
      EXPECT_LE(it->second, static_cast<double>(limit)) << "limit " << limit;
    }
    EXPECT_GE(it->second, 1.0);
    // The cap never costs coverage: every scene still ranks.
    EXPECT_EQ(report->scenes_ok, 6u) << "limit " << limit;
  }
}

// ---------------------------------------------------------------------------
// 7. Watch: incremental fold + re-rank, and the corruption sweep.
// ---------------------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(WatchTest, FoldsAndReranksOnlyTheChangedScene) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(4, 29);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());

  const std::string model_path = dir + "/model.json";
  {
    Fixy engine;
    ASSERT_TRUE(engine.Learn(dataset).ok());
    ASSERT_TRUE(engine.SaveModel(model_path).ok());
  }

  int stop_pipe[2] = {-1, -1};
  ASSERT_EQ(::pipe(stop_pipe), 0);

  daemon::WatchOptions options;
  options.data_dir = dir;
  options.model_path = model_path;
  options.poll_interval_ms = 20;
  options.learn_labels = true;
  options.apps = {"missing-tracks"};
  options.batch.num_threads = 1;
  options.collect_metrics = true;
  options.quiet = true;
  options.stop_fd = stop_pipe[0];

  // Synchronize on cycle progress via the on_cycle observer instead of
  // wall-clock sleeps: edit after the bootstrap cycle finishes, stop once
  // a cycle has applied an update.
  std::atomic<size_t> cycles_seen{0};
  std::atomic<size_t> updates_seen{0};
  options.on_cycle = [&](const daemon::WatchReport& running) {
    cycles_seen.store(running.cycles);
    updates_seen.store(running.updates);
  };

  Result<daemon::WatchReport> report =
      Status::Internal("watch never returned");
  std::thread watcher(
      [&] { report = daemon::WatchDataset(options); });

  const auto wait_until = [](const std::function<bool()>& done) {
    // Generous ceiling; the wait normally ends within a poll or two.
    for (int i = 0; i < 3000 && !done(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return done();
  };
  ASSERT_TRUE(wait_until([&] { return cycles_seen.load() >= 1; }))
      << "bootstrap cycle never completed";
  Dataset fresh = MakeLabeledDataset(1, 555);
  fresh.scenes.front().set_name(dataset.scenes[1].name());
  ASSERT_TRUE(io::SaveScene(fresh.scenes.front(),
                            dir + "/" + dataset.scenes[1].name() +
                                ".fixy.json")
                  .ok());
  ASSERT_TRUE(wait_until([&] { return updates_seen.load() >= 1; }))
      << "the edit was never picked up";
  const char stop = 1;
  ASSERT_EQ(::write(stop_pipe[1], &stop, 1), 1);
  watcher.join();
  ::close(stop_pipe[0]);
  ::close(stop_pipe[1]);

  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->cycles, 2u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->updates, 1u);
  EXPECT_EQ(report->scenes_encoded, 1u);  // only the edited scene
  EXPECT_EQ(report->folds, 1u);
  // Bootstrap ranked all 4 scenes, the update exactly 1 more.
  EXPECT_EQ(report->scenes_ranked, 5u);
  // The fold persisted the model with stats intact.
  Fixy reloaded;
  ASSERT_TRUE(reloaded.LoadModel(model_path).ok());
  EXPECT_TRUE(reloaded.supports_incremental_learning());
}

TEST(WatchTest, SurvivesSeededCorruptionSweep) {
  const std::string dir = TempDir();
  Dataset dataset = MakeLabeledDataset(3, 37);
  ASSERT_TRUE(io::SaveDataset(dataset, dir).ok());
  ASSERT_TRUE(io::BuildFxbCache(dir).ok());
  const std::string pristine_cache = ReadFile(io::FxbCachePath(dir));

  const std::string model_path = dir + "/model.json";
  {
    Fixy engine;
    ASSERT_TRUE(engine.Learn(dataset).ok());
    ASSERT_TRUE(engine.SaveModel(model_path).ok());
  }

  daemon::WatchOptions options;
  options.data_dir = dir;
  options.model_path = model_path;
  options.poll_interval_ms = 0;
  options.max_cycles = 2;
  options.apps = {"missing-tracks"};
  options.batch.num_threads = 1;
  options.quiet = true;

  // Corrupted cache containers: every kind, several seeds — the watch
  // loop must repair (rebuild) or ride through each one, never crash.
  for (uint64_t seed = 0; seed < 24; ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    const fixy::testing::CorruptionResult corruption =
        corruptor.CorruptBinary(pristine_cache);
    WriteFile(io::FxbCachePath(dir), corruption.document);
    const auto report = daemon::WatchDataset(options);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": " << report.status();
    // Whatever the mutation did, the loop must leave a fresh cache behind.
    EXPECT_TRUE(io::OpenFreshCache(dir).ok()) << "seed " << seed;
  }

  // A corrupt *source* file: the cycle fails (or quarantines the scene),
  // is counted, and the loop keeps polling; restoring the source heals it.
  const std::string victim =
      dir + "/" + dataset.scenes[0].name() + ".fixy.json";
  const std::string good_scene = ReadFile(victim);
  WriteFile(victim, good_scene.substr(0, good_scene.size() / 2));
  const auto wounded = daemon::WatchDataset(options);
  ASSERT_TRUE(wounded.ok()) << wounded.status();
  WriteFile(victim, good_scene);
  const auto healed = daemon::WatchDataset(options);
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_TRUE(io::OpenFreshCache(dir).ok());
}

#endif  // POSIX

}  // namespace
}  // namespace fixy
