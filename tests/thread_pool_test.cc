#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fixy {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(4), 4);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotKillWorkers) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("boom"); });
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destructor runs while most tasks are still queued.
  }
  EXPECT_EQ(completed.load(), 32);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::promise<void> inner_done;
  std::future<void> inner_future = inner_done.get_future();
  pool.Submit([&] {
        ++counter;
        pool.Submit([&] {
              ++counter;
              inner_done.set_value();
            });
      })
      .get();
  inner_future.wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace fixy
