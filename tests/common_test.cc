// Tests for src/common: Status, Result, macros, random, string utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/bounded_queue.h"
#include "common/crc32.h"
#include "common/macros.h"
#include "common/process.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace fixy {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
  EXPECT_EQ(Status::InvalidArgument("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("negative volume");
  EXPECT_EQ(s.ToString(), "InvalidArgument: negative volume");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream os;
  os << Status::IoError("disk");
  EXPECT_EQ(os.str(), "IoError: disk");
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> ok = 7;
  EXPECT_EQ(ok.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> HelperReturnsError() { return Status::OutOfRange("nope"); }

Result<int> HelperUsesAssignOrReturn() {
  FIXY_ASSIGN_OR_RETURN(int v, HelperReturnsError());
  return v + 1;
}

Status HelperUsesReturnIfError() {
  FIXY_RETURN_IF_ERROR(Status::Ok());
  FIXY_RETURN_IF_ERROR(Status::IoError("late"));
  return Status::Ok();
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  const Result<int> r = HelperUsesAssignOrReturn();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(MacrosTest, ReturnIfErrorPropagatesFirstError) {
  const Status s = HelperUsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalSingleOutcome) {
  Rng rng(37);
  EXPECT_EQ(rng.Categorical({5.0}), 0u);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(41);
  const int n = 50000;
  long total = 0;
  for (int i = 0; i < n; ++i) total += rng.Poisson(4.0);
  EXPECT_NEAR(static_cast<double>(total) / n, 4.0, 0.1);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(47);
  const int n = 20000;
  long total = 0;
  for (int i = 0; i < n; ++i) {
    const int x = rng.Poisson(50.0);
    EXPECT_GE(x, 0);
    total += x;
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 50.0, 0.5);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Split();
  // Child stream differs from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.NextUint64() != child.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
  }
}

// --------------------------------------------------------- string utils

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d", 7), "x=7");
  EXPECT_EQ(StrFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  const std::string big(5000, 'x');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 5000u);
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StrSplit) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, StrSplitEmptyString) {
  const auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, StrTrim) {
  EXPECT_EQ(StrTrim("  hi  "), "hi");
  EXPECT_EQ(StrTrim("\t\nx\r "), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, DoubleToStringDropsTrailingZeros) {
  EXPECT_EQ(DoubleToString(3.5), "3.5");
  EXPECT_EQ(DoubleToString(2.0), "2");
  EXPECT_EQ(DoubleToString(0.125), "0.125");
}

// ----------------------------------------------------------------- Crc32

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  // Sensitive to every byte.
  EXPECT_NE(Crc32("123456789"), Crc32("123456780"));
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(Crc32Test, StringViewOverloadAgreesWithPointerForm) {
  const std::string bytes = "fxb section payload \x00\xff\x7f";
  EXPECT_EQ(Crc32(bytes), Crc32(bytes.data(), bytes.size()));
}

// ---------------------------------------------------------- BoundedQueue

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(7));
  EXPECT_EQ(queue.Pop(), 7);
}

TEST(BoundedQueueTest, CloseFailsPushesAndDrainsPops) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));
  // Items queued before Close remain poppable, then nullopt.
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // Close is sticky
}

TEST(BoundedQueueTest, FullQueueBlocksProducerUntilConsumed) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  // The producer cannot complete while the queue is full. (A sleep-based
  // "still blocked" probe would be flaky; we only assert delivery order
  // through the happens-before of Pop -> Push completion.)
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::thread consumer([&] { EXPECT_EQ(queue.Pop(), std::nullopt); });
  queue.Close();
  consumer.join();
}

TEST(BoundedQueueTest, PopWithTimeoutTriState) {
  using PopStatus = BoundedQueue<int>::PopStatus;
  BoundedQueue<int> queue(4);
  std::optional<int> item;

  // Item available: returned immediately.
  EXPECT_TRUE(queue.Push(7));
  EXPECT_EQ(queue.PopWithTimeout(1000, &item), PopStatus::kItem);
  EXPECT_EQ(item, 7);

  // Empty but open: timeout, not closed — the caller can tell a silent
  // producer from a finished stream.
  item.reset();
  EXPECT_EQ(queue.PopWithTimeout(5, &item), PopStatus::kTimeout);
  EXPECT_FALSE(item.has_value());

  // Closed with items left: still drains them before reporting closed.
  EXPECT_TRUE(queue.Push(8));
  queue.Close();
  EXPECT_EQ(queue.PopWithTimeout(5, &item), PopStatus::kItem);
  EXPECT_EQ(item, 8);
  EXPECT_EQ(queue.PopWithTimeout(5, &item), PopStatus::kClosed);
  EXPECT_EQ(queue.PopWithTimeout(5, &item), PopStatus::kClosed);  // sticky
}

TEST(BoundedQueueTest, PopWithTimeoutWokenByLatePush) {
  BoundedQueue<int> queue(2);
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(queue.Push(42));
  });
  // A generous deadline: the late push must wake the waiter well before
  // the timeout fires.
  std::optional<int> item;
  EXPECT_EQ(queue.PopWithTimeout(10000, &item),
            BoundedQueue<int>::PopStatus::kItem);
  EXPECT_EQ(item, 42);
  producer.join();
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kItemsPerProducer = 250;
  BoundedQueue<int> queue(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kItemsPerProducer + i));
      }
    });
  }
  std::mutex mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&queue, &mutex, &seen] {
      while (auto item = queue.Pop()) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(*item);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(seen.size(),
            static_cast<size_t>(kProducers * kItemsPerProducer));
}

// --------------------------------------------------------------- process

#if defined(__unix__) || defined(__APPLE__)

// Writing to a peer that already hung up must surface as an IoError, not
// a SIGPIPE that kills the process. This is the regression the shard
// worker, coordinator, and fixyd all depend on through IgnoreSigpipe():
// before the fix only the worker ignored SIGPIPE, so a coordinator (or
// daemon) writing to a dead peer died with the default signal action.
TEST(ProcessTest, WriteToDeadPeerFailsInsteadOfKillingTheProcess) {
  IgnoreSigpipe();
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);  // peer hangs up

  // Large enough that the kernel cannot buffer it all even if the
  // first write squeaks through before the EPIPE materializes.
  const std::string payload(1 << 20, 'x');
  Status status = WriteAllFd(fds[0], payload);
  if (status.ok()) {
    // A second write after the hang-up is guaranteed to hit EPIPE.
    status = WriteAllFd(fds[0], payload);
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status;
  ::close(fds[0]);
}

TEST(ProcessTest, IgnoreSigpipeIsIdempotent) {
  IgnoreSigpipe();
  IgnoreSigpipe();  // second call must be a harmless no-op
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  EXPECT_FALSE(WriteAllFd(fds[1], "boom").ok());
  ::close(fds[1]);
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
}  // namespace fixy
