// Tests for src/baselines: the four ad-hoc model assertions and
// uncertainty sampling.
#include <gtest/gtest.h>

#include "baselines/model_assertions.h"
#include "baselines/uncertainty.h"

namespace fixy::baselines {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source, double x,
                    double y, int frame, double confidence = 0.9) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = ObjectClass::kCar;
  obs.box = geom::Box3d({x, y, 0.85}, 4.5, 1.9, 1.7, 0.0);
  obs.frame_index = frame;
  obs.timestamp = frame * 0.1;
  obs.confidence = source == ObservationSource::kHuman ? 1.0 : confidence;
  return obs;
}

// A scene with: a human+model labeled object, a model-only consistent
// object (missing label), and a model-only 2-frame blip.
Scene TestScene() {
  Scene scene("baseline", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 10; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.ego_position = {0.8 * f, 0};
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kHuman, 10 + 0.8 * f, 2, f));
    frame.observations.push_back(MakeObs(
        id++, ObservationSource::kModel, 10.05 + 0.8 * f, 2.02, f, 0.95));
    frame.observations.push_back(MakeObs(
        id++, ObservationSource::kModel, 20 + 0.8 * f, -2, f, 0.7));
    if (f == 4 || f == 5) {
      frame.observations.push_back(
          MakeObs(id++, ObservationSource::kModel, 40, 9, f, 0.45));
    }
    scene.AddFrame(std::move(frame));
  }
  return scene;
}

// ----------------------------------------------------------- Consistency

TEST(ConsistencyAssertionTest, FlagsModelOnlyTracks) {
  const auto proposals =
      ConsistencyAssertion(TestScene(), MaOrdering::kRandom, 1);
  ASSERT_TRUE(proposals.ok());
  // The missing-label track and the 2-frame blip are model-only; the
  // labeled track is not flagged.
  EXPECT_EQ(proposals->size(), 2u);
  for (const ErrorProposal& p : *proposals) {
    EXPECT_EQ(p.kind, ProposalKind::kMissingTrack);
  }
}

TEST(ConsistencyAssertionTest, ConfidenceOrderingRanksByConfidence) {
  const auto proposals =
      ConsistencyAssertion(TestScene(), MaOrdering::kConfidence, 1);
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 2u);
  EXPECT_GE((*proposals)[0].model_confidence,
            (*proposals)[1].model_confidence);
  EXPECT_NEAR((*proposals)[0].score, 0.7, 1e-9);
}

TEST(ConsistencyAssertionTest, RandomOrderingIsSeedDeterministic) {
  const auto a = ConsistencyAssertion(TestScene(), MaOrdering::kRandom, 42);
  const auto b = ConsistencyAssertion(TestScene(), MaOrdering::kRandom, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].track_id, (*b)[i].track_id);
  }
}

TEST(ConsistencyAssertionTest, MinLengthFiltersSingletons) {
  Scene scene("single", 10.0);
  Frame frame;
  frame.index = 0;
  frame.observations.push_back(
      MakeObs(1, ObservationSource::kModel, 10, 0, 0));
  scene.AddFrame(std::move(frame));
  const auto proposals =
      ConsistencyAssertion(scene, MaOrdering::kRandom, 1);
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}

// ---------------------------------------------------------------- Appear

TEST(AppearAssertionTest, FlagsOnlyShortTracks) {
  const auto proposals = AppearAssertion(TestScene());
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 1u);
  EXPECT_EQ((*proposals)[0].first_frame, 4);
  EXPECT_EQ((*proposals)[0].last_frame, 5);
  EXPECT_EQ((*proposals)[0].kind, ProposalKind::kModelError);
}

// --------------------------------------------------------------- Flicker

TEST(FlickerAssertionTest, FlagsTracksWithGaps) {
  Scene scene("flicker", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 8; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    if (f != 3) {  // flicker: disappear at frame 3, reappear at 4
      frame.observations.push_back(
          MakeObs(id++, ObservationSource::kModel, 10 + 0.2 * f, 0, f));
    }
    scene.AddFrame(std::move(frame));
  }
  const auto proposals = FlickerAssertion(scene);
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 1u);
  EXPECT_DOUBLE_EQ((*proposals)[0].score, 1.0);
}

TEST(FlickerAssertionTest, ContinuousTrackNotFlagged) {
  const auto proposals = FlickerAssertion(TestScene());
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}

// -------------------------------------------------------------- Multibox

TEST(MultiboxAssertionTest, FlagsTripleOverlap) {
  Scene scene("multibox", 10.0);
  Frame frame;
  frame.index = 0;
  frame.observations.push_back(
      MakeObs(1, ObservationSource::kModel, 10.0, 0, 0));
  frame.observations.push_back(
      MakeObs(2, ObservationSource::kModel, 10.4, 0.1, 0));
  frame.observations.push_back(
      MakeObs(3, ObservationSource::kModel, 10.8, -0.1, 0));
  scene.AddFrame(std::move(frame));
  const auto proposals = MultiboxAssertion(scene);
  ASSERT_TRUE(proposals.ok());
  EXPECT_GE(proposals->size(), 1u);
  EXPECT_EQ((*proposals)[0].kind, ProposalKind::kModelError);
}

TEST(MultiboxAssertionTest, PairOverlapNotFlagged) {
  Scene scene("pair", 10.0);
  Frame frame;
  frame.index = 0;
  frame.observations.push_back(
      MakeObs(1, ObservationSource::kModel, 10.0, 0, 0));
  frame.observations.push_back(
      MakeObs(2, ObservationSource::kModel, 10.4, 0.1, 0));
  scene.AddFrame(std::move(frame));
  const auto proposals = MultiboxAssertion(scene);
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}

TEST(MultiboxAssertionTest, IgnoresHumanBoxes) {
  Scene scene("humans", 10.0);
  Frame frame;
  frame.index = 0;
  for (int i = 0; i < 3; ++i) {
    frame.observations.push_back(
        MakeObs(static_cast<ObservationId>(i + 1), ObservationSource::kHuman,
                10.0 + 0.2 * i, 0, 0));
  }
  scene.AddFrame(std::move(frame));
  const auto proposals = MultiboxAssertion(scene);
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}

// ---------------------------------------------------------- Uncertainty

TEST(UncertaintySamplingTest, MostUncertainFirst) {
  const auto proposals = UncertaintySampling(TestScene());
  ASSERT_TRUE(proposals.ok());
  ASSERT_GE(proposals->size(), 3u);
  // The 2-frame blip has confidence 0.45, closest to the 0.5 threshold.
  EXPECT_NEAR((*proposals)[0].model_confidence, 0.45, 1e-9);
  for (size_t i = 1; i < proposals->size(); ++i) {
    EXPECT_GE((*proposals)[i - 1].score, (*proposals)[i].score);
  }
}

TEST(UncertaintySamplingTest, DeduplicatesByTrack) {
  const auto proposals = UncertaintySampling(TestScene());
  ASSERT_TRUE(proposals.ok());
  std::set<TrackId> tracks;
  for (const ErrorProposal& p : *proposals) {
    EXPECT_TRUE(tracks.insert(p.track_id).second)
        << "duplicate track " << p.track_id;
  }
}

TEST(UncertaintySamplingTest, WithoutDedupeEmitsPerObservation) {
  UncertaintyOptions options;
  options.deduplicate_by_track = false;
  const auto proposals = UncertaintySampling(TestScene(), options);
  ASSERT_TRUE(proposals.ok());
  // 10 + 10 + 2 model observations.
  EXPECT_EQ(proposals->size(), 22u);
}

TEST(UncertaintySamplingTest, HighConfidenceErrorsRankLast) {
  const auto proposals = UncertaintySampling(TestScene());
  ASSERT_TRUE(proposals.ok());
  // The 0.95-confidence track is the least uncertain.
  EXPECT_NEAR(proposals->back().model_confidence, 0.95, 1e-9);
}

TEST(UncertaintySamplingTest, CustomThreshold) {
  UncertaintyOptions options;
  options.confidence_threshold = 0.95;
  const auto proposals = UncertaintySampling(TestScene(), options);
  ASSERT_TRUE(proposals.ok());
  EXPECT_NEAR((*proposals)[0].model_confidence, 0.95, 1e-9);
}

}  // namespace
}  // namespace fixy::baselines
