// Tests for src/core: standard features (Table 2), the distribution
// learner, ranking utilities, the three applications (Section 7), and the
// Fixy engine facade.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/applications.h"
#include "core/engine.h"
#include "core/features_std.h"
#include "core/learner.h"
#include "core/ranker.h"
#include "obs/metrics.h"
#include "sim/generate.h"

namespace fixy {
namespace {

Observation MakeObs(ObservationId id, ObservationSource source, double x,
                    double y, int frame, ObjectClass cls = ObjectClass::kCar,
                    double confidence = 1.0) {
  Observation obs;
  obs.id = id;
  obs.source = source;
  obs.object_class = cls;
  obs.box = geom::Box3d({x, y, 0.85}, 4.5, 1.9, 1.7, 0.0);
  obs.frame_index = frame;
  obs.timestamp = frame * 0.1;
  obs.confidence = confidence;
  return obs;
}

ObservationBundle MakeBundle(int frame, std::vector<Observation> obs,
                             geom::Vec2 ego = {0, 0}) {
  ObservationBundle bundle;
  bundle.frame_index = frame;
  bundle.timestamp = frame * 0.1;
  bundle.ego_position = ego;
  bundle.observations = std::move(obs);
  return bundle;
}

// ------------------------------------------------------ standard features

TEST(FeaturesStdTest, VolumeFeature) {
  const VolumeFeature volume;
  EXPECT_TRUE(volume.class_conditional());
  const Observation obs = MakeObs(1, ObservationSource::kHuman, 0, 0, 0);
  const FeatureContext ctx{{0, 0}, 10.0};
  ASSERT_TRUE(volume.Compute(obs, ctx).has_value());
  EXPECT_NEAR(*volume.Compute(obs, ctx), 4.5 * 1.9 * 1.7, 1e-12);
}

TEST(FeaturesStdTest, VolumeFeatureRejectsDegenerateBox) {
  const VolumeFeature volume;
  Observation obs = MakeObs(1, ObservationSource::kHuman, 0, 0, 0);
  obs.box.height = 0.0;
  EXPECT_FALSE(volume.Compute(obs, {{0, 0}, 10.0}).has_value());
}

TEST(FeaturesStdTest, DistanceFeature) {
  const DistanceFeature distance;
  const Observation obs = MakeObs(1, ObservationSource::kHuman, 3, 4, 0);
  EXPECT_NEAR(*distance.Compute(obs, {{0, 0}, 10.0}), 5.0, 1e-12);
  EXPECT_NEAR(*distance.Compute(obs, {{3, 4}, 10.0}), 0.0, 1e-12);
}

TEST(FeaturesStdTest, ModelOnlyFeature) {
  const ModelOnlyFeature model_only;
  const FeatureContext ctx{{0, 0}, 10.0};
  const auto pure_model = MakeBundle(
      0, {MakeObs(1, ObservationSource::kModel, 0, 0, 0),
          MakeObs(2, ObservationSource::kModel, 0, 0, 0)});
  EXPECT_DOUBLE_EQ(*model_only.Compute(pure_model, ctx), 1.0);
  const auto mixed = MakeBundle(
      0, {MakeObs(1, ObservationSource::kModel, 0, 0, 0),
          MakeObs(2, ObservationSource::kHuman, 0, 0, 0)});
  EXPECT_DOUBLE_EQ(*model_only.Compute(mixed, ctx), 0.0);
  EXPECT_FALSE(model_only.Compute(ObservationBundle{}, ctx).has_value());
}

TEST(FeaturesStdTest, VelocityFeature) {
  const VelocityFeature velocity;
  EXPECT_TRUE(velocity.class_conditional());
  const auto from = MakeBundle(
      0, {MakeObs(1, ObservationSource::kHuman, 10, 0, 0)});
  const auto to = MakeBundle(
      1, {MakeObs(2, ObservationSource::kHuman, 10.8, 0.6, 1)});
  // Displacement 1.0 m over 0.1 s -> 10 m/s.
  EXPECT_NEAR(*velocity.Compute(from, to, {{0, 0}, 10.0}), 10.0, 1e-9);
}

TEST(FeaturesStdTest, VelocityFeatureRejectsNonPositiveDt) {
  const VelocityFeature velocity;
  const auto a = MakeBundle(0, {MakeObs(1, ObservationSource::kHuman, 0, 0, 0)});
  EXPECT_FALSE(velocity.Compute(a, a, {{0, 0}, 10.0}).has_value());
}

TEST(FeaturesStdTest, CountFeature) {
  const CountFeature count;
  Track track(1);
  track.AddBundle(MakeBundle(0, {MakeObs(1, ObservationSource::kHuman, 0, 0, 0),
                                 MakeObs(2, ObservationSource::kModel, 0, 0, 0)}));
  track.AddBundle(MakeBundle(1, {MakeObs(3, ObservationSource::kHuman, 0, 0, 1)}));
  EXPECT_DOUBLE_EQ(*count.Compute(track, {{0, 0}, 10.0}), 3.0);
}

TEST(FeaturesStdTest, DistanceSeverityDecaysWithDistance) {
  const auto severity = MakeDistanceSeverityDistribution(25.0);
  EXPECT_DOUBLE_EQ(severity->Density(0.0), 1.0);
  EXPECT_NEAR(severity->Density(25.0), std::exp(-1.0), 1e-12);
  EXPECT_GT(severity->Density(10.0), severity->Density(50.0));
}

TEST(FeaturesStdTest, ModelOnlyDistributionIsBinary) {
  const auto dist = MakeModelOnlyDistribution();
  EXPECT_DOUBLE_EQ(dist->Density(1.0), 1.0);
  EXPECT_DOUBLE_EQ(dist->Density(0.0), 0.0);
}

TEST(FeaturesStdTest, CountFilterThreshold) {
  const auto filter = MakeCountFilterDistribution(2);
  EXPECT_DOUBLE_EQ(filter->Density(1.0), 0.0);
  EXPECT_DOUBLE_EQ(filter->Density(2.0), 0.0);
  EXPECT_DOUBLE_EQ(filter->Density(3.0), 1.0);
}

// --------------------------------------------------------------- Ranker

ErrorProposal Proposal(double score, ObjectClass cls = ObjectClass::kCar,
                       TrackId track = 0) {
  ErrorProposal p;
  p.scene_name = "s";
  p.track_id = track;
  p.object_class = cls;
  p.score = score;
  return p;
}

TEST(RankerTest, SortsDescendingByScore) {
  std::vector<ErrorProposal> proposals = {Proposal(0.1), Proposal(0.9),
                                          Proposal(0.5)};
  RankProposals(&proposals);
  EXPECT_DOUBLE_EQ(proposals[0].score, 0.9);
  EXPECT_DOUBLE_EQ(proposals[2].score, 0.1);
}

TEST(RankerTest, TieBreakIsDeterministic) {
  std::vector<ErrorProposal> proposals = {Proposal(0.5, ObjectClass::kCar, 9),
                                          Proposal(0.5, ObjectClass::kCar, 2)};
  RankProposals(&proposals);
  EXPECT_EQ(proposals[0].track_id, 2u);
}

TEST(RankerTest, TopKClamps) {
  std::vector<ErrorProposal> proposals = {Proposal(0.3), Proposal(0.2)};
  EXPECT_EQ(TopK(proposals, 10).size(), 2u);
  EXPECT_EQ(TopK(proposals, 1).size(), 1u);
  EXPECT_EQ(TopK({}, 5).size(), 0u);
}

TEST(RankerTest, TopKPerClassLimitsEachClass) {
  std::vector<ErrorProposal> proposals;
  for (int i = 0; i < 5; ++i) {
    proposals.push_back(Proposal(1.0 - 0.1 * i, ObjectClass::kCar,
                                 static_cast<TrackId>(i)));
  }
  proposals.push_back(Proposal(0.01, ObjectClass::kTruck, 99));
  RankProposals(&proposals);
  const auto top = TopKPerClass(proposals, 2);
  // 2 cars + 1 truck.
  ASSERT_EQ(top.size(), 3u);
  int cars = 0;
  int trucks = 0;
  for (const auto& p : top) {
    if (p.object_class == ObjectClass::kCar) ++cars;
    if (p.object_class == ObjectClass::kTruck) ++trucks;
  }
  EXPECT_EQ(cars, 2);
  EXPECT_EQ(trucks, 1);
}

// Regression: proposals loaded from a hand-edited file (via proposal_io)
// can carry an ObjectClass outside the enum. TopKPerClass used the raw
// cast as a vector index — out-of-bounds UB. They must now be skipped,
// counted, and never returned.
TEST(RankerTest, TopKPerClassSkipsOutOfRangeClasses) {
  std::vector<ErrorProposal> proposals = {
      Proposal(0.9, ObjectClass::kCar, 1),
      Proposal(0.8, static_cast<ObjectClass>(99), 2),
      Proposal(0.7, static_cast<ObjectClass>(-3), 3),
      Proposal(0.6, ObjectClass::kTruck, 4),
  };
  RankProposals(&proposals);

  obs::MetricsCollector collector;
  const obs::MetricsScope scope(&collector);
  const auto top = TopKPerClass(proposals, 2);
  ASSERT_EQ(top.size(), 2u);
  for (const auto& p : top) {
    EXPECT_LT(static_cast<size_t>(p.object_class), kNumObjectClasses);
  }
  EXPECT_EQ(collector.Snapshot().counters.at("rank.invalid_class_proposals"),
            2u);
}

TEST(RankerTest, TopKPerClassAllInvalidYieldsEmpty) {
  std::vector<ErrorProposal> proposals = {
      Proposal(0.9, static_cast<ObjectClass>(7), 1),
      Proposal(0.8, static_cast<ObjectClass>(1000), 2),
  };
  RankProposals(&proposals);
  EXPECT_TRUE(TopKPerClass(proposals, 3).empty());
}

// -------------------------------------------------------------- Learner

sim::GeneratedDataset SmallTrainingSet() {
  return sim::GenerateDataset(sim::LyftLikeProfile(), "train", 3, 101);
}

TEST(LearnerTest, LearnsVolumeAndVelocity) {
  const auto training = SmallTrainingSet();
  const DistributionLearner learner;
  std::vector<FeaturePtr> features = {std::make_shared<VolumeFeature>(),
                                      std::make_shared<VelocityFeature>()};
  const auto learned = learner.Learn(training.dataset, features);
  ASSERT_TRUE(learned.ok()) << learned.status();
  ASSERT_EQ(learned->size(), 2u);
  // A typical car volume is likely; an absurd one is not.
  const FeatureContext ctx{{0, 0}, 10.0};
  Observation car = MakeObs(1, ObservationSource::kHuman, 0, 0, 0);
  const auto typical = (*learned)[0].ScoreObservation(car, ctx);
  ASSERT_TRUE(typical.has_value());
  car.box.length = 40.0;  // a 40 m "car"
  const auto absurd = (*learned)[0].ScoreObservation(car, ctx);
  ASSERT_TRUE(absurd.has_value());
  EXPECT_GT(*typical, *absurd * 100.0);
}

TEST(LearnerTest, CollectValuesSeparatesClasses) {
  const auto training = SmallTrainingSet();
  const DistributionLearner learner;
  const VolumeFeature volume;
  const auto collected = learner.CollectValues(training.dataset, volume);
  ASSERT_TRUE(collected.ok());
  EXPECT_TRUE(collected->global.empty());
  ASSERT_FALSE(collected->per_class.empty());
  // Car volumes cluster far below truck volumes.
  const auto& cars = collected->per_class.at(ObjectClass::kCar);
  const auto& trucks = collected->per_class.at(ObjectClass::kTruck);
  ASSERT_GE(cars.size(), 10u);
  ASSERT_GE(trucks.size(), 10u);
  double car_mean = 0;
  for (double v : cars) car_mean += v;
  car_mean /= static_cast<double>(cars.size());
  double truck_mean = 0;
  for (double v : trucks) truck_mean += v;
  truck_mean /= static_cast<double>(trucks.size());
  EXPECT_GT(truck_mean, car_mean * 2.0);
}

TEST(LearnerTest, FailsOnEmptyDataset) {
  const DistributionLearner learner;
  const Dataset empty;
  const auto learned =
      learner.Learn(empty, {std::make_shared<VolumeFeature>()});
  EXPECT_FALSE(learned.ok());
}

TEST(LearnerTest, FailsOnNullFeature) {
  const auto training = SmallTrainingSet();
  const DistributionLearner learner;
  EXPECT_FALSE(learner.Learn(training.dataset, {nullptr}).ok());
}

TEST(LearnerTest, EstimatorKindNames) {
  EXPECT_STREQ(EstimatorKindToString(EstimatorKind::kKde), "kde");
  EXPECT_STREQ(EstimatorKindToString(EstimatorKind::kHistogram), "histogram");
  EXPECT_STREQ(EstimatorKindToString(EstimatorKind::kGaussian), "gaussian");
  EXPECT_STREQ(EstimatorKindToString(EstimatorKind::kCategorical),
               "categorical");
}

TEST(LearnerTest, AllSourcesEnablesCrossSourceBundleFeatures) {
  const auto training = SmallTrainingSet();
  // Human-only learning sees single-observation bundles, so the
  // class-agreement feature has no samples; all-sources learning does.
  LearnerOptions human_only;
  human_only.estimator = EstimatorKind::kCategorical;
  const auto fail =
      DistributionLearner(human_only)
          .Learn(training.dataset,
                 {std::make_shared<ClassAgreementFeature>()});
  EXPECT_FALSE(fail.ok());

  LearnerOptions all;
  all.estimator = EstimatorKind::kCategorical;
  all.all_sources = true;
  const auto ok =
      DistributionLearner(all).Learn(
          training.dataset, {std::make_shared<ClassAgreementFeature>()});
  ASSERT_TRUE(ok.ok()) << ok.status();
  // Agreement (1) is the overwhelmingly likely outcome.
  const FeatureContext ctx{{0, 0}, 10.0};
  ObservationBundle agreeing;
  agreeing.observations = {
      MakeObs(1, ObservationSource::kHuman, 0, 0, 0),
      MakeObs(2, ObservationSource::kModel, 0, 0, 0)};
  ObservationBundle disagreeing;
  disagreeing.observations = {
      MakeObs(3, ObservationSource::kHuman, 0, 0, 0, ObjectClass::kCar),
      MakeObs(4, ObservationSource::kModel, 0, 0, 0, ObjectClass::kTruck)};
  EXPECT_GT(*ok->front().ScoreBundle(agreeing, ctx),
            *ok->front().ScoreBundle(disagreeing, ctx));
}

TEST(LearnerTest, AllEstimatorsFit) {
  const auto training = SmallTrainingSet();
  for (EstimatorKind kind :
       {EstimatorKind::kKde, EstimatorKind::kHistogram,
        EstimatorKind::kGaussian, EstimatorKind::kCategorical}) {
    LearnerOptions options;
    options.estimator = kind;
    const DistributionLearner learner(options);
    const auto learned =
        learner.Learn(training.dataset, {std::make_shared<VolumeFeature>()});
    EXPECT_TRUE(learned.ok())
        << EstimatorKindToString(kind) << ": " << learned.status();
  }
}

// -------------------------------------------------------------- Engine

TEST(EngineTest, RequiresLearnBeforeFind) {
  const Fixy fixy;
  const Scene scene("s", 10.0);
  EXPECT_EQ(fixy.FindMissingTracks(scene).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fixy.FindMissingObservations(scene).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fixy.FindModelErrors(scene).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, LearnExposesFeatureDistributions) {
  const auto training = SmallTrainingSet();
  Fixy fixy;
  ASSERT_TRUE(fixy.Learn(training.dataset).ok());
  EXPECT_TRUE(fixy.is_learned());
  ASSERT_EQ(fixy.learned_features().size(), 2u);
  EXPECT_EQ(fixy.learned_features()[0].feature().name(), "volume");
  EXPECT_EQ(fixy.learned_features()[1].feature().name(), "velocity");
}

TEST(EngineTest, LearnFailsOnEmptyDataset) {
  Fixy fixy;
  EXPECT_FALSE(fixy.Learn(Dataset{}).ok());
  EXPECT_FALSE(fixy.is_learned());
}

// ---------------------------------------------------------- Applications

// Builds a scene with one human+model labeled object, one model-only
// consistent object (a real missing label), and one erratic model-only
// ghost.
Scene MissingTrackScenario() {
  Scene scene("scenario", 10.0);
  ObservationId id = 1;
  Rng rng(7);
  for (int f = 0; f < 10; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.ego_position = {0.8 * f, 0.0};
    // Labeled object.
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kHuman, 10 + 0.8 * f, 2, f));
    frame.observations.push_back(MakeObs(id++, ObservationSource::kModel,
                                         10.05 + 0.8 * f, 2.03, f,
                                         ObjectClass::kCar, 0.9));
    // Missing object: consistent model-only detections.
    frame.observations.push_back(MakeObs(id++, ObservationSource::kModel,
                                         15 + 0.8 * f, -2, f,
                                         ObjectClass::kCar, 0.85));
    // Ghost: erratic model-only boxes near a fixed spot.
    if (f >= 2 && f <= 7) {
      Observation ghost = MakeObs(id++, ObservationSource::kModel,
                                  30 + rng.Normal(0.0, 1.2),
                                  8 + rng.Normal(0.0, 1.2), f,
                                  ObjectClass::kCar, 0.6);
      ghost.box.length *= 1.0 + rng.Normal(0.0, 0.25);
      ghost.box.width *= 1.0 + rng.Normal(0.0, 0.25);
      frame.observations.push_back(std::move(ghost));
    }
    scene.AddFrame(std::move(frame));
  }
  return scene;
}

class ApplicationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto training = SmallTrainingSet();
    ASSERT_TRUE(fixy_.Learn(training.dataset).ok());
  }

  Fixy fixy_;
};

TEST_F(ApplicationsTest, MissingTrackExcludesHumanLabeledTracks) {
  const auto proposals = fixy_.FindMissingTracks(MissingTrackScenario());
  ASSERT_TRUE(proposals.ok()) << proposals.status();
  // The missing object plus ghost fragments; the human-labeled track must
  // not be proposed. The labeled track is the only one spanning frames
  // 0..9 at full length with human boxes, so no proposal may claim a box
  // in its lane (y ~ +2).
  EXPECT_GE(proposals->size(), 2u);
  for (const ErrorProposal& p : *proposals) {
    EXPECT_EQ(p.kind, ProposalKind::kMissingTrack);
    // The labeled object lives in the y = +2 lane; ghosts sit near y = 8
    // and the missing object at y = -2.
    EXPECT_GT(std::abs(p.box.center.y - 2.0), 1.0);
  }
}

TEST_F(ApplicationsTest, ConsistentMissingTrackOutranksGhost) {
  const auto proposals = fixy_.FindMissingTracks(MissingTrackScenario());
  ASSERT_TRUE(proposals.ok());
  ASSERT_GE(proposals->size(), 2u);
  // The consistent track spans all 10 frames; ghost fragments are shorter
  // and erratic, so the consistent one must rank first.
  EXPECT_EQ((*proposals)[0].last_frame - (*proposals)[0].first_frame, 9);
  EXPECT_GT((*proposals)[0].score, (*proposals)[1].score);
}

TEST_F(ApplicationsTest, MissingObservationFindsDroppedHumanBox) {
  // A fully labeled object whose human box is missing at frame 4.
  Scene scene("missing_obs", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 10; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.ego_position = {0.8 * f, 0};
    if (f != 4) {
      frame.observations.push_back(
          MakeObs(id++, ObservationSource::kHuman, 10 + 0.8 * f, 2, f));
    }
    frame.observations.push_back(MakeObs(id++, ObservationSource::kModel,
                                         10.05 + 0.8 * f, 2.02, f,
                                         ObjectClass::kCar, 0.9));
    scene.AddFrame(std::move(frame));
  }
  const auto proposals = fixy_.FindMissingObservations(scene);
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 1u);
  EXPECT_EQ((*proposals)[0].kind, ProposalKind::kMissingObservation);
  EXPECT_EQ((*proposals)[0].frame_index, 4);
}

TEST_F(ApplicationsTest, MissingObservationIgnoresModelOnlyTracks) {
  // A track with no human labels at all must not produce
  // missing-observation proposals (Section 8.3's AOF zeroes it).
  Scene scene("model_only", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 6; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.observations.push_back(MakeObs(id++, ObservationSource::kModel,
                                         10 + 0.5 * f, 0, f,
                                         ObjectClass::kCar, 0.9));
    scene.AddFrame(std::move(frame));
  }
  const auto proposals = fixy_.FindMissingObservations(scene);
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}

TEST_F(ApplicationsTest, ModelErrorsRankGhostAboveCleanTrack) {
  const auto proposals = fixy_.FindModelErrors(MissingTrackScenario());
  ASSERT_TRUE(proposals.ok());
  ASSERT_GE(proposals->size(), 2u);
  // The top proposal should be (a fragment of) the erratic ghost, which
  // lives in frames 2..7 — not one of the two smooth tracks spanning 0..9.
  EXPECT_GE((*proposals)[0].first_frame, 2);
  EXPECT_LE((*proposals)[0].last_frame, 7);
}

TEST_F(ApplicationsTest, ModelErrorsIgnoreHumanObservations) {
  // Scene with only human labels -> no model tracks -> no proposals.
  Scene scene("humans_only", 10.0);
  ObservationId id = 1;
  for (int f = 0; f < 5; ++f) {
    Frame frame;
    frame.index = f;
    frame.timestamp = f * 0.1;
    frame.observations.push_back(
        MakeObs(id++, ObservationSource::kHuman, 10, 2, f));
    scene.AddFrame(std::move(frame));
  }
  const auto proposals = fixy_.FindModelErrors(scene);
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}

TEST_F(ApplicationsTest, ProposalsAreRankedDescending) {
  const auto proposals = fixy_.FindMissingTracks(MissingTrackScenario());
  ASSERT_TRUE(proposals.ok());
  for (size_t i = 1; i < proposals->size(); ++i) {
    EXPECT_GE((*proposals)[i - 1].score, (*proposals)[i].score);
  }
}

TEST_F(ApplicationsTest, EmptySceneProducesNoProposals) {
  const Scene scene("empty", 10.0);
  EXPECT_TRUE(fixy_.FindMissingTracks(scene)->empty());
  EXPECT_TRUE(fixy_.FindMissingObservations(scene)->empty());
  EXPECT_TRUE(fixy_.FindModelErrors(scene)->empty());
}

}  // namespace
}  // namespace fixy
