// Tests for src/stats: KDE, histogram, Gaussian, discrete distributions,
// summaries, and the Distribution interface contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/discrete.h"
#include "stats/distribution.h"
#include "stats/gaussian.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "stats/lambda_distribution.h"
#include "stats/summary.h"

namespace fixy::stats {
namespace {

std::vector<double> NormalSample(double mean, double sd, int n,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.Normal(mean, sd));
  return xs;
}

// -------------------------------------------------------------- Summary

TEST(SummaryTest, MeanVarianceStddev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(Stddev(xs), std::sqrt(2.5));
}

TEST(SummaryTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
}

TEST(SummaryTest, QuantileInterpolation) {
  const std::vector<double> sorted = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.125), 5.0);
}

TEST(SummaryTest, QuantileClampsOutOfRange) {
  const std::vector<double> sorted = {1, 2, 3};
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 1.5), 3.0);
}

TEST(SummaryTest, UnsortedQuantileSortsInternally) {
  EXPECT_DOUBLE_EQ(Quantile({3, 1, 2}, 0.5), 2.0);
}

TEST(SummaryTest, SummarizeFields) {
  const Summary s = Summarize({4, 1, 3, 2});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

TEST(EmpiricalCdfTest, StepFunction) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

// ------------------------------------------------------------------ KDE

TEST(KdeTest, RejectsEmptyAndNonFinite) {
  EXPECT_FALSE(GaussianKde::Fit({}).ok());
  EXPECT_FALSE(GaussianKde::Fit({1.0, NAN}).ok());
  EXPECT_FALSE(GaussianKde::Fit({INFINITY}).ok());
}

TEST(KdeTest, RejectsBadBandwidth) {
  EXPECT_FALSE(GaussianKde::FitWithBandwidth({1, 2, 3}, 0.0).ok());
  EXPECT_FALSE(GaussianKde::FitWithBandwidth({1, 2, 3}, -1.0).ok());
}

// Regression: bandwidths that pass a naive `> 0` check but whose
// reciprocal or normalization overflows to inf (denormals, ~1e-320) or
// that are not numbers at all must be rejected with a Status, not abort
// the process — they are reachable from a hand-edited model file.
TEST(KdeTest, RejectsNonFiniteAndDenormalBandwidth) {
  EXPECT_FALSE(GaussianKde::FitWithBandwidth({1, 2, 3}, NAN).ok());
  EXPECT_FALSE(GaussianKde::FitWithBandwidth({1, 2, 3}, INFINITY).ok());
  EXPECT_FALSE(GaussianKde::FitWithBandwidth({1, 2, 3}, 1e-320).ok());
  EXPECT_FALSE(GaussianKde::FitWithBandwidth({1, 2, 3}, 1e-300).ok());
  // The smallest accepted bandwidth still yields a finite density.
  const auto kde = GaussianKde::FitWithBandwidth({1, 2, 3}, 1e-6);
  ASSERT_TRUE(kde.ok());
  EXPECT_TRUE(std::isfinite(kde->Density(2.0)));
}

TEST(KdeTest, SingleSampleIsPeakedAtValue) {
  const auto kde = GaussianKde::Fit({5.0});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density(5.0), kde->Density(5.5));
  EXPECT_NEAR(kde->NormalizedScore(5.0), 1.0, 1e-9);
}

TEST(KdeTest, DensityPeaksNearMode) {
  const auto kde = GaussianKde::Fit(NormalSample(10.0, 1.0, 2000, 1));
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density(10.0), kde->Density(13.0));
  EXPECT_GT(kde->Density(10.0), kde->Density(7.0));
}

TEST(KdeTest, DensityApproximatesTrueNormal) {
  const auto kde = GaussianKde::Fit(NormalSample(0.0, 1.0, 5000, 2));
  ASSERT_TRUE(kde.ok());
  const double peak = 0.3989422804014327;
  EXPECT_NEAR(kde->Density(0.0), peak, 0.04);
  EXPECT_NEAR(kde->Density(1.0), peak * std::exp(-0.5), 0.04);
}

TEST(KdeTest, IntegratesToApproximatelyOne) {
  const auto kde = GaussianKde::Fit(NormalSample(3.0, 2.0, 1000, 3));
  ASSERT_TRUE(kde.ok());
  double integral = 0.0;
  const double dx = 0.05;
  for (double x = -10.0; x <= 16.0; x += dx) {
    integral += kde->Density(x) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, NormalizedScoreInUnitInterval) {
  const auto kde = GaussianKde::Fit(NormalSample(0.0, 1.0, 500, 4));
  ASSERT_TRUE(kde.ok());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double s = kde->NormalizedScore(rng.Uniform(-20, 20));
    EXPECT_GE(s, kScoreFloor);
    EXPECT_LE(s, 1.0);
  }
}

TEST(KdeTest, FarTailHitsScoreFloor) {
  const auto kde = GaussianKde::Fit(NormalSample(0.0, 1.0, 500, 6));
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->NormalizedScore(1e6), kScoreFloor);
}

TEST(KdeTest, DegenerateSampleGetsFallbackBandwidth) {
  const auto kde = GaussianKde::Fit({2.0, 2.0, 2.0, 2.0});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0.0);
  EXPECT_GT(kde->Density(2.0), 0.0);
  EXPECT_NEAR(kde->NormalizedScore(2.0), 1.0, 1e-9);
}

TEST(KdeTest, SilvermanRuleAlsoWorks) {
  const auto kde = GaussianKde::Fit(NormalSample(0, 1, 500, 7),
                                    BandwidthRule::kSilverman);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0.0);
  EXPECT_GT(kde->Density(0.0), kde->Density(3.0));
}

TEST(KdeTest, BimodalSampleHasTwoPeaks) {
  std::vector<double> xs = NormalSample(-5.0, 0.5, 1000, 8);
  const std::vector<double> right = NormalSample(5.0, 0.5, 1000, 9);
  xs.insert(xs.end(), right.begin(), right.end());
  const auto kde = GaussianKde::Fit(std::move(xs));
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density(-5.0), kde->Density(0.0) * 5.0);
  EXPECT_GT(kde->Density(5.0), kde->Density(0.0) * 5.0);
}

TEST(KdeTest, TruncatedEvaluationMatchesFullSum) {
  // Density from the sorted/cutoff implementation must match a naive sum.
  const std::vector<double> xs = NormalSample(0.0, 1.0, 300, 10);
  const auto kde = GaussianKde::FitWithBandwidth(xs, 0.4);
  ASSERT_TRUE(kde.ok());
  for (double x : {-2.0, -0.5, 0.0, 1.0, 3.0}) {
    double naive = 0.0;
    for (double s : xs) {
      const double u = (x - s) / 0.4;
      naive += std::exp(-0.5 * u * u);
    }
    naive *= 0.3989422804014327 / (0.4 * static_cast<double>(xs.size()));
    EXPECT_NEAR(kde->Density(x), naive, 1e-12);
  }
}

TEST(KdeTest, DensityBatchMatchesScalarDensity) {
  // The batch sliding-window path must produce bit-identical densities to
  // per-point evaluation, for sorted and unsorted query orders.
  const auto kde = GaussianKde::Fit(NormalSample(0.0, 1.0, 500, 12));
  ASSERT_TRUE(kde.ok());
  const std::vector<double> sorted_queries = {-3.0, -1.0, 0.0, 0.5, 2.5};
  const std::vector<double> unsorted_queries = {2.5, -3.0, 0.5, -1.0, 0.0};
  for (const std::vector<double>& queries :
       {sorted_queries, unsorted_queries}) {
    std::vector<double> batch(queries.size());
    kde->DensityBatch(queries, batch);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch[i], kde->Density(queries[i])) << "query " << i;
    }
  }
}

TEST(KdeTest, DensityBatchHandlesDuplicatesAndTails) {
  const auto kde = GaussianKde::Fit(NormalSample(5.0, 2.0, 200, 13));
  ASSERT_TRUE(kde.ok());
  // Duplicates, far tails (empty kernel windows), and interior points.
  const std::vector<double> queries = {5.0, 5.0, -1e6, 1e6, 4.9, 5.0};
  std::vector<double> batch(queries.size());
  kde->DensityBatch(queries, batch);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], kde->Density(queries[i])) << "query " << i;
  }
  EXPECT_EQ(batch[2], 0.0);
  EXPECT_EQ(batch[3], 0.0);
}

// ------------------------------------------------------------ Histogram

TEST(HistogramTest, RejectsInvalidInput) {
  EXPECT_FALSE(HistogramDensity::Fit({}).ok());
  EXPECT_FALSE(HistogramDensity::Fit({1.0}, 0).ok());
  EXPECT_FALSE(HistogramDensity::Fit({NAN}).ok());
}

TEST(HistogramTest, UniformDataGivesFlatDensity) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Uniform(0.0, 10.0));
  const auto hist = HistogramDensity::Fit(xs, 10);
  ASSERT_TRUE(hist.ok());
  // Uniform density over [0, 10] is 0.1.
  for (double x : {0.5, 3.3, 7.7, 9.5}) {
    EXPECT_NEAR(hist->Density(x), 0.1, 0.01);
  }
}

TEST(HistogramTest, OutOfRangeIsZero) {
  const auto hist = HistogramDensity::Fit({1, 2, 3}, 4);
  ASSERT_TRUE(hist.ok());
  EXPECT_DOUBLE_EQ(hist->Density(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(hist->Density(100.0), 0.0);
}

TEST(HistogramTest, DegenerateSampleWidened) {
  const auto hist = HistogramDensity::Fit({3.0, 3.0, 3.0}, 4);
  ASSERT_TRUE(hist.ok());
  EXPECT_GT(hist->Density(3.0), 0.0);
}

TEST(HistogramTest, ModeDensityIsMaxBin) {
  const auto hist = HistogramDensity::Fit({1, 1, 1, 1, 5}, 4);
  ASSERT_TRUE(hist.ok());
  EXPECT_NEAR(hist->NormalizedScore(1.0), 1.0, 1e-9);
  EXPECT_LT(hist->NormalizedScore(5.0), 1.0);
}

TEST(HistogramTest, BinCountsSumToSampleCount) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.Normal(0, 2));
  const auto hist = HistogramDensity::Fit(xs, 16);
  ASSERT_TRUE(hist.ok());
  size_t total = 0;
  for (int b = 0; b < hist->num_bins(); ++b) total += hist->bin_count(b);
  EXPECT_EQ(total, xs.size());
}

// ------------------------------------------------------------- Gaussian

TEST(GaussianTest, CreateValidation) {
  EXPECT_TRUE(Gaussian::Create(0.0, 1.0).ok());
  EXPECT_FALSE(Gaussian::Create(0.0, 0.0).ok());
  EXPECT_FALSE(Gaussian::Create(0.0, -1.0).ok());
  EXPECT_FALSE(Gaussian::Create(NAN, 1.0).ok());
}

TEST(GaussianTest, DensityGoldenValues) {
  const auto g = Gaussian::Create(0.0, 1.0);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->Density(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(g->Density(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(g->ModeDensity(), 0.3989422804014327, 1e-12);
}

TEST(GaussianTest, FitRecoversParameters) {
  const auto g = Gaussian::Fit(NormalSample(5.0, 2.0, 50000, 14));
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->mean(), 5.0, 0.05);
  EXPECT_NEAR(g->stddev(), 2.0, 0.05);
}

TEST(GaussianTest, FitDegenerateSample) {
  const auto g = Gaussian::Fit({4.0, 4.0, 4.0});
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->stddev(), 0.0);
}

TEST(GaussianTest, NormalizedScoreAtMeanIsOne) {
  const auto g = Gaussian::Create(3.0, 0.5);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->NormalizedScore(3.0), 1.0, 1e-12);
  EXPECT_NEAR(g->NormalizedScore(3.5), std::exp(-0.5), 1e-12);
}

// ------------------------------------------------------------- Discrete

TEST(BernoulliTest, CreateValidation) {
  EXPECT_TRUE(Bernoulli::Create(0.3).ok());
  EXPECT_FALSE(Bernoulli::Create(-0.1).ok());
  EXPECT_FALSE(Bernoulli::Create(1.1).ok());
}

TEST(BernoulliTest, MassFunction) {
  const auto b = Bernoulli::Create(0.3);
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(b->Density(1.0), 0.3);
  EXPECT_DOUBLE_EQ(b->Density(0.0), 0.7);
  EXPECT_DOUBLE_EQ(b->Density(2.0), 0.0);
  EXPECT_DOUBLE_EQ(b->ModeDensity(), 0.7);
}

TEST(BernoulliTest, FitWithSmoothing) {
  // 3 ones of 4 samples with add-one smoothing: (3+1)/(4+2) = 2/3.
  const auto b = Bernoulli::Fit({1, 1, 1, 0});
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->p_one(), 2.0 / 3.0, 1e-12);
}

TEST(BernoulliTest, FitAllOnesStaysBelowOne) {
  const auto b = Bernoulli::Fit({1, 1, 1, 1});
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b->p_one(), 1.0);
  EXPECT_GT(b->Density(0.0), 0.0);
}

TEST(BernoulliTest, FitRejectsEmpty) { EXPECT_FALSE(Bernoulli::Fit({}).ok()); }

TEST(CategoricalTest, FitCountsAndSmoothes) {
  const auto c = Categorical::Fit({1, 1, 2, 3, 3, 3});
  ASSERT_TRUE(c.ok());
  // Add-one over support {1,2,3}: total = 6 + 3 = 9.
  EXPECT_NEAR(c->Mass(1), 3.0 / 9.0, 1e-12);
  EXPECT_NEAR(c->Mass(2), 2.0 / 9.0, 1e-12);
  EXPECT_NEAR(c->Mass(3), 4.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(c->Mass(7), 0.0);
}

TEST(CategoricalTest, DensityRoundsInput) {
  const auto c = Categorical::Fit({2, 2, 5});
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->Density(2.3), c->Mass(2));
  EXPECT_DOUBLE_EQ(c->Density(4.6), c->Mass(5));
}

TEST(CategoricalTest, ModeDensityIsMaxMass) {
  const auto c = Categorical::Fit({4, 4, 4, 9});
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c->ModeDensity(), c->Mass(4), 1e-12);
  EXPECT_NEAR(c->NormalizedScore(4.0), 1.0, 1e-12);
}

TEST(CategoricalTest, RejectsEmptyAndNonFinite) {
  EXPECT_FALSE(Categorical::Fit({}).ok());
  EXPECT_FALSE(Categorical::Fit({1.0, NAN}).ok());
}

// --------------------------------------------------------------- Lambda

TEST(LambdaDistributionTest, WrapsFunction) {
  const LambdaDistribution d("exp", [](double x) { return std::exp(-x); });
  EXPECT_DOUBLE_EQ(d.Density(0.0), 1.0);
  EXPECT_NEAR(d.Density(1.0), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.ModeDensity(), 1.0);
}

TEST(LambdaDistributionTest, ClampsToUnitInterval) {
  const LambdaDistribution d("wild", [](double x) { return x; });
  EXPECT_DOUBLE_EQ(d.Density(5.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Density(-5.0), 0.0);
}

TEST(DistributionInterfaceTest, LogDensityIsFloored) {
  const LambdaDistribution d("zero", [](double) { return 0.0; });
  EXPECT_TRUE(std::isfinite(d.LogDensity(0.0)));
  EXPECT_DOUBLE_EQ(d.LogDensity(0.0), std::log(kScoreFloor));
}

// Property sweep: for every estimator, NormalizedScore stays in
// [floor, 1] across a wide input range.
class DistributionContractTest
    : public ::testing::TestWithParam<std::shared_ptr<const Distribution>> {};

TEST_P(DistributionContractTest, NormalizedScoreBounds) {
  const auto& dist = GetParam();
  Rng rng(55);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(-100.0, 100.0);
    const double s = dist->NormalizedScore(x);
    EXPECT_GE(s, kScoreFloor);
    EXPECT_LE(s, 1.0);
    EXPECT_GE(dist->Density(x), 0.0);
  }
}

std::vector<std::shared_ptr<const Distribution>> AllDistributions() {
  std::vector<std::shared_ptr<const Distribution>> all;
  all.push_back(std::make_shared<GaussianKde>(
      GaussianKde::Fit(NormalSample(0, 2, 300, 21)).value()));
  all.push_back(std::make_shared<HistogramDensity>(
      HistogramDensity::Fit(NormalSample(0, 2, 300, 22), 16).value()));
  all.push_back(std::make_shared<Gaussian>(Gaussian::Create(0, 2).value()));
  all.push_back(std::make_shared<Bernoulli>(Bernoulli::Create(0.4).value()));
  all.push_back(std::make_shared<Categorical>(
      Categorical::Fit({1, 2, 2, 3, 3, 3}).value()));
  all.push_back(std::make_shared<LambdaDistribution>(
      "exp", [](double x) { return std::exp(-std::abs(x)); }));
  return all;
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, DistributionContractTest,
                         ::testing::ValuesIn(AllDistributions()));

}  // namespace
}  // namespace fixy::stats
