// The fault-injection harness (robustness tentpole): seeded corrupted
// .fixy documents driven through the full parse -> validate -> rank
// pipeline. The contract under test: hostile input is either rejected
// with a Status at the ingestion boundary or scored normally — never a
// crash, abort, non-finite score, or poisoned neighbour in a batch.
//
// Run under FIXY_SANITIZE=address and =thread (tools/check.sh) to turn
// latent UB on these paths into hard failures.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/engine.h"
#include "io/fxb.h"
#include "io/scene_io.h"
#include "shard/checkpoint.h"
#include "shard/coordinator.h"
#include "sim/generate.h"
#include "testing/document_corruptor.h"

namespace fixy {
namespace {

// Joins a corruption history for failure messages.
std::string Describe(const testing::CorruptionResult& corruption) {
  std::string out;
  for (const std::string& m : corruption.mutations) {
    if (!out.empty()) out += ", ";
    out += m;
  }
  return out;
}

// gtest's ASSERT_* macros only work in void functions; this keeps the
// boolean return of DriveThroughPipeline while still failing loudly.
#define ASSERT_OK_OR_RETURN(result, seed, description)                 \
  do {                                                                 \
    if (!(result).ok()) {                                              \
      EXPECT_TRUE((result).ok())                                       \
          << "seed=" << (seed) << " mutations=[" << (description)      \
          << "] rank failed: " << (result).status();                   \
      return true;                                                     \
    }                                                                  \
  } while (0)

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small scenes keep 1000+ corruption rounds fast; the document still
    // exercises every schema element (frames, ego, observations, boxes).
    sim::SimProfile profile = sim::LyftLikeProfile();
    profile.world.duration_seconds = 2.0;
    profile.world.mean_object_count = 6.0;

    fixy_ = new Fixy();
    const sim::GeneratedDataset training =
        sim::GenerateDataset(profile, "fuzz_train", 3, 911);
    ASSERT_TRUE(fixy_->Learn(training.dataset).ok());

    base_documents_ = new std::vector<std::string>();
    for (int i = 0; i < 4; ++i) {
      const sim::GeneratedScene generated = sim::GenerateScene(
          profile, "fuzz_base_" + std::to_string(i), 1000 + i);
      base_documents_->push_back(io::SceneToString(generated.scene));
    }
  }

  static void TearDownTestSuite() {
    delete fixy_;
    delete base_documents_;
    fixy_ = nullptr;
    base_documents_ = nullptr;
  }

  // Runs one corrupted document through the pipeline; returns true if it
  // survived to ranking. Any crash/abort fails the whole binary; this
  // only asserts score sanity on the survivors.
  static bool DriveThroughPipeline(const std::string& document,
                                   uint64_t seed,
                                   const std::string& description) {
    Result<Scene> scene = io::SceneFromString(document);
    if (!scene.ok()) return false;  // rejected at the ingestion boundary

    const Application app = static_cast<Application>(seed % 3);
    Dataset dataset;
    dataset.scenes.push_back(*scene);
    const Result<BatchReport> report =
        fixy_->RankDataset(dataset, app, BatchOptions{1});
    ASSERT_OK_OR_RETURN(report, seed, description);
    for (const SceneOutcome& outcome : report->outcomes) {
      if (!outcome.ok()) continue;  // quarantined: also acceptable
      for (const ErrorProposal& p : outcome.proposals) {
        EXPECT_TRUE(std::isfinite(p.score))
            << "seed=" << seed << " mutations=[" << description
            << "] produced non-finite score";
      }
    }
    return true;
  }

  static Fixy* fixy_;
  static std::vector<std::string>* base_documents_;
};

Fixy* FaultInjectionTest::fixy_ = nullptr;
std::vector<std::string>* FaultInjectionTest::base_documents_ = nullptr;

// The corruptor itself is deterministic: same seed, same document, same
// mutations and output.
TEST_F(FaultInjectionTest, CorruptorIsDeterministic) {
  const std::string& doc = base_documents_->front();
  for (uint64_t seed : {0u, 1u, 42u, 977u}) {
    fixy::testing::DocumentCorruptor a(seed);
    fixy::testing::DocumentCorruptor b(seed);
    const auto ra = a.Corrupt(doc);
    const auto rb = b.Corrupt(doc);
    EXPECT_EQ(ra.document, rb.document) << "seed=" << seed;
    EXPECT_EQ(ra.mutations, rb.mutations) << "seed=" << seed;
  }
}

// The acceptance gate: >= 1000 seeded corrupted documents through
// parse -> validate -> rank with zero crashes, aborts, or non-finite
// scores. Also sanity-checks the corruptor: some documents must die at
// the parser, some must survive all the way to ranking — otherwise the
// corruptor is either too destructive or a no-op and the test would be
// vacuous.
TEST_F(FaultInjectionTest, ThousandCorruptedDocumentsNeverCrashThePipeline) {
  constexpr uint64_t kRounds = 1200;
  size_t rejected = 0;
  size_t ranked = 0;
  for (uint64_t seed = 0; seed < kRounds; ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    const std::string& base =
        (*base_documents_)[seed % base_documents_->size()];
    const fixy::testing::CorruptionResult corruption =
        corruptor.Corrupt(base);
    if (DriveThroughPipeline(corruption.document, seed,
                             Describe(corruption))) {
      ++ranked;
    } else {
      ++rejected;
    }
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal failure at seed " << seed << " mutations=["
             << Describe(corruption) << "]";
    }
  }
  EXPECT_EQ(rejected + ranked, kRounds);
  // Corruptor sanity: both outcomes must actually occur.
  EXPECT_GT(rejected, 0u) << "no corrupted document was ever rejected";
  EXPECT_GT(ranked, 0u) << "no corrupted document ever survived to rank";
}

// Every corruption kind individually, across many seeds — narrower than
// the big sweep, but failures pin directly to one mutation family.
TEST_F(FaultInjectionTest, EachCorruptionKindIsSurvivable) {
  using fixy::testing::CorruptionKind;
  const CorruptionKind kinds[] = {
      CorruptionKind::kTruncate,     CorruptionKind::kByteNoise,
      CorruptionKind::kTypeFlip,     CorruptionKind::kFieldDrop,
      CorruptionKind::kNumberInjection, CorruptionKind::kDuplicateId,
  };
  for (const CorruptionKind kind : kinds) {
    for (uint64_t seed = 0; seed < 40; ++seed) {
      fixy::testing::DocumentCorruptor corruptor(seed);
      std::string detail;
      const std::string mutated = corruptor.Apply(
          kind, base_documents_->front(), &detail);
      DriveThroughPipeline(mutated, seed,
                           std::string(ToString(kind)) + ": " + detail);
    }
  }
}

// Batch poisoning, fuzz edition: corrupted documents that survive parsing
// share a batch with a clean scene; the clean scene's proposals must be
// byte-identical to ranking it alone, for serial and parallel runs.
TEST_F(FaultInjectionTest, SurvivingCorruptScenesNeverPoisonCleanScene) {
  sim::SimProfile profile = sim::LyftLikeProfile();
  profile.world.duration_seconds = 2.0;
  profile.world.mean_object_count = 6.0;
  const sim::GeneratedScene clean =
      sim::GenerateScene(profile, "fuzz_clean", 4242);

  // Reference: the clean scene ranked alone.
  Dataset solo;
  solo.scenes.push_back(clean.scene);
  const auto reference =
      fixy_->RankDataset(solo, Application::kMissingTracks, BatchOptions{1});
  ASSERT_TRUE(reference.ok());

  // Collect survivors until the batch has a few hostile neighbours.
  Dataset mixed;
  for (uint64_t seed = 5000; seed < 5400 && mixed.scenes.size() < 6;
       ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    const fixy::testing::CorruptionResult corruption = corruptor.Corrupt(
        (*base_documents_)[seed % base_documents_->size()]);
    Result<Scene> scene = io::SceneFromString(corruption.document);
    if (!scene.ok()) continue;
    scene->set_name("hostile_" + std::to_string(seed));
    mixed.scenes.push_back(std::move(*scene));
  }
  ASSERT_FALSE(mixed.scenes.empty())
      << "no corrupted document survived parsing; corruptor too destructive";
  mixed.scenes.push_back(clean.scene);
  const size_t clean_index = mixed.scenes.size() - 1;

  for (const int threads : {1, 4}) {
    const auto result = fixy_->RankDataset(
        mixed, Application::kMissingTracks, BatchOptions{threads});
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    const SceneOutcome& outcome = result->outcomes[clean_index];
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.proposals.size(),
              reference->outcomes[0].proposals.size());
    for (size_t i = 0; i < outcome.proposals.size(); ++i) {
      EXPECT_EQ(outcome.proposals[i].score,
                reference->outcomes[0].proposals[i].score);
      EXPECT_EQ(outcome.proposals[i].track_id,
                reference->outcomes[0].proposals[i].track_id);
    }
  }
}

// ---- Binary (FXB) fault injection ----

// A small multi-scene dataset encoded once; every binary corruption test
// mutates copies of this blob.
const std::string& BaseFxbBlob() {
  static const std::string* blob = [] {
    sim::SimProfile profile = sim::LyftLikeProfile();
    profile.world.duration_seconds = 2.0;
    profile.world.mean_object_count = 6.0;
    Dataset dataset;
    dataset.name = "fuzz_fxb";
    for (int i = 0; i < 4; ++i) {
      dataset.scenes.push_back(
          sim::GenerateScene(profile, "fxb_base_" + std::to_string(i),
                             2000 + i)
              .scene);
    }
    std::vector<io::FxbSourceRecord> sources;
    for (const Scene& scene : dataset.scenes) {
      sources.push_back({scene.name() + ".fixy.json", 1 << 18, 99,
                         static_cast<uint32_t>(sources.size() + 1)});
    }
    sources.push_back({"manifest.json", 256, 100, 5});
    auto encoded = io::EncodeFxbDataset(dataset, sources);
    if (!encoded.ok()) std::abort();
    return new std::string(std::move(*encoded));
  }();
  return *blob;
}

TEST_F(FaultInjectionTest, BinaryCorruptorIsDeterministic) {
  const std::string& blob = BaseFxbBlob();
  for (uint64_t seed : {0u, 7u, 123u, 991u}) {
    fixy::testing::DocumentCorruptor a(seed);
    fixy::testing::DocumentCorruptor b(seed);
    const auto ra = a.CorruptBinary(blob);
    const auto rb = b.CorruptBinary(blob);
    EXPECT_EQ(ra.document, rb.document) << "seed=" << seed;
    EXPECT_EQ(ra.mutations, rb.mutations) << "seed=" << seed;
  }
}

// The binary acceptance gate: >= 500 seeded corrupted FXB containers
// through open -> decode -> streaming rank with zero crashes. For every
// container that opens, the streaming report must quarantine exactly the
// scenes whose decode fails (counted independently beforehand) and score
// the rest with finite scores.
TEST_F(FaultInjectionTest, CorruptedFxbContainersNeverCrashStreamingRank) {
  constexpr uint64_t kRounds = 600;
  const std::string& blob = BaseFxbBlob();
  size_t rejected_at_open = 0;
  size_t opened = 0;
  size_t scenes_quarantined = 0;
  size_t scenes_ranked = 0;
  for (uint64_t seed = 0; seed < kRounds; ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    const fixy::testing::CorruptionResult corruption =
        corruptor.CorruptBinary(blob);
    auto reader = io::FxbReader::FromBuffer(corruption.document);
    if (!reader.ok()) {
      // Header/index-level rejection: the valid outcome for mutations
      // that damage the container rather than one section.
      ++rejected_at_open;
      continue;
    }
    ++opened;
    const io::FxbSceneSource source(std::move(*reader));
    // Count decode failures independently of the engine.
    size_t expected_failures = 0;
    for (size_t i = 0; i < source.scene_count(); ++i) {
      if (!source.DecodeScene(i).ok()) ++expected_failures;
    }
    const Application app = static_cast<Application>(seed % 3);
    const auto report = fixy_->RankDatasetStreaming(
        source, app, BatchOptions{static_cast<int>(seed % 4) + 1});
    ASSERT_TRUE(report.ok())
        << "seed=" << seed << " mutations=[" << Describe(corruption)
        << "] streaming rank failed: " << report.status();
    EXPECT_EQ(report->scenes_quarantined, expected_failures)
        << "seed=" << seed << " mutations=[" << Describe(corruption) << "]";
    scenes_quarantined += report->scenes_quarantined;
    scenes_ranked += report->scenes_ok;
    for (const SceneOutcome& outcome : report->outcomes) {
      if (!outcome.ok()) continue;
      for (const ErrorProposal& p : outcome.proposals) {
        EXPECT_TRUE(std::isfinite(p.score))
            << "seed=" << seed << " mutations=[" << Describe(corruption)
            << "] produced non-finite score";
      }
    }
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal failure at seed " << seed << " mutations=["
             << Describe(corruption) << "]";
    }
  }
  // Corruptor sanity: all three fates must actually occur — containers
  // rejected at open, scenes quarantined at decode, and scenes ranked.
  EXPECT_GT(rejected_at_open, 0u) << "no container was ever rejected";
  EXPECT_GT(opened, 0u) << "every container was rejected at open";
  EXPECT_GT(scenes_quarantined, 0u) << "no scene was ever quarantined";
  EXPECT_GT(scenes_ranked, 0u) << "no scene ever survived to rank";
}

// Every binary corruption kind individually, across many seeds.
TEST_F(FaultInjectionTest, EachBinaryCorruptionKindIsSurvivable) {
  using fixy::testing::BinaryCorruptionKind;
  const std::string& blob = BaseFxbBlob();
  const BinaryCorruptionKind kinds[] = {
      BinaryCorruptionKind::kHeaderTruncate,
      BinaryCorruptionKind::kTruncate,
      BinaryCorruptionKind::kByteFlip,
      BinaryCorruptionKind::kChecksumFlip,
      BinaryCorruptionKind::kVersionBump,
      BinaryCorruptionKind::kSectionLengthLie,
      BinaryCorruptionKind::kSourceMapFlip,
      BinaryCorruptionKind::kSourceRecordLie,
  };
  for (const BinaryCorruptionKind kind : kinds) {
    for (uint64_t seed = 0; seed < 30; ++seed) {
      fixy::testing::DocumentCorruptor corruptor(seed);
      std::string detail;
      const std::string mutated = corruptor.ApplyBinary(kind, blob, &detail);
      auto reader = io::FxbReader::FromBuffer(mutated);
      if (!reader.ok()) continue;  // rejected at open: acceptable
      const io::FxbSceneSource source(std::move(*reader));
      const auto report = fixy_->RankDatasetStreaming(
          source, Application::kMissingTracks, BatchOptions{2});
      ASSERT_TRUE(report.ok())
          << ToString(kind) << ": " << detail << " seed=" << seed << ": "
          << report.status();
    }
  }
}

// kChecksumFlip's isolation contract: exactly one scene's checksum fails;
// its neighbours decode and rank.
TEST_F(FaultInjectionTest, ChecksumFlipQuarantinesExactlyOneScene) {
  using fixy::testing::BinaryCorruptionKind;
  const std::string& blob = BaseFxbBlob();
  size_t observed = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    std::string detail;
    const std::string mutated =
        corruptor.ApplyBinary(BinaryCorruptionKind::kChecksumFlip, blob,
                              &detail);
    auto reader = io::FxbReader::FromBuffer(mutated);
    ASSERT_TRUE(reader.ok()) << detail << ": " << reader.status();
    const io::FxbSceneSource source(std::move(*reader));
    const auto report = fixy_->RankDatasetStreaming(
        source, Application::kMissingTracks, BatchOptions{1});
    ASSERT_TRUE(report.ok()) << detail;
    // The flipped byte may land in a scene name or padding and keep the
    // section decodable only if it still checksums — it cannot, so at
    // most one scene fails, and usually exactly one.
    EXPECT_LE(report->scenes_quarantined, 1u) << detail;
    observed += report->scenes_quarantined;
  }
  EXPECT_GT(observed, 0u) << "checksum-flip never quarantined a scene";
}

#undef ASSERT_OK_OR_RETURN

// --------------------------------------------------- shard checkpoints

// The checkpoint corruptor is deterministic like its siblings.
TEST(CheckpointCorruptorTest, IsDeterministic) {
  shard::ShardCheckpoint checkpoint;
  checkpoint.shard_index = 2;
  checkpoint.range = {4, 6};
  checkpoint.fingerprint = 0x1234abcd5678ef00ull;
  checkpoint.report.apps = {"model-errors"};
  checkpoint.report.reports.resize(1);
  checkpoint.report.reports[0].outcomes.resize(2);
  checkpoint.report.reports[0].outcomes[0].scene_name = "a";
  checkpoint.report.reports[0].outcomes[1].scene_name = "b";
  const std::string blob = shard::EncodeShardCheckpoint(checkpoint);
  for (uint64_t seed : {0u, 1u, 42u, 977u}) {
    fixy::testing::DocumentCorruptor a(seed);
    fixy::testing::DocumentCorruptor b(seed);
    const auto ra = a.CorruptCheckpoint(blob);
    const auto rb = b.CorruptCheckpoint(blob);
    EXPECT_EQ(ra.document, rb.document) << "seed=" << seed;
    EXPECT_EQ(ra.mutations, rb.mutations) << "seed=" << seed;
  }
}

// Every checkpoint corruption kind must be *rejected* by the decode /
// reuse ladder — a corrupt checkpoint is never trusted. The decode-level
// half of the contract; the resume sweep below drives the full
// coordinator path.
TEST(CheckpointCorruptorTest, EveryKindDefeatsDecodeOrFingerprint) {
  using fixy::testing::CheckpointCorruptionKind;
  shard::ShardCheckpoint checkpoint;
  checkpoint.shard_index = 0;
  checkpoint.range = {0, 1};
  checkpoint.fingerprint = 0xfeedfacecafef00dull;
  checkpoint.report.apps = {"model-errors"};
  checkpoint.report.reports.resize(1);
  checkpoint.report.reports[0].outcomes.resize(1);
  checkpoint.report.reports[0].outcomes[0].scene_name = "s";
  const std::string blob = shard::EncodeShardCheckpoint(checkpoint);
  const CheckpointCorruptionKind kinds[] = {
      CheckpointCorruptionKind::kTruncate,
      CheckpointCorruptionKind::kCrcFlip,
      CheckpointCorruptionKind::kStaleFingerprint,
  };
  for (const CheckpointCorruptionKind kind : kinds) {
    for (uint64_t seed = 0; seed < 50; ++seed) {
      fixy::testing::DocumentCorruptor corruptor(seed);
      std::string detail;
      const std::string mutated = corruptor.ApplyCheckpoint(kind, blob,
                                                            &detail);
      const auto decoded = shard::DecodeShardCheckpoint(mutated);
      if (kind == CheckpointCorruptionKind::kStaleFingerprint) {
        // Every CRC verifies by construction; the fingerprint gate is
        // the only thing standing — it must actually have changed.
        ASSERT_TRUE(decoded.ok()) << detail << ": " << decoded.status();
        EXPECT_NE(decoded->fingerprint, checkpoint.fingerprint) << detail;
      } else {
        EXPECT_FALSE(decoded.ok()) << detail << " decoded successfully";
      }
    }
  }
}

#if defined(FIXY_CLI_PATH) && (defined(__unix__) || defined(__APPLE__))

// Fixture for the resume sweep: a tiny on-disk dataset + model, one
// uninterrupted sharded run whose checkpoints are the pristine inputs
// and whose merged bytes are the reference output.
class CheckpointFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    namespace fs = std::filesystem;
    base_dir_ = new std::string(
        (fs::temp_directory_path() /
         ("fixy_ckpt_fault_" + std::to_string(::getpid())))
            .string());
    fs::remove_all(*base_dir_);
    fs::create_directories(*base_dir_);
    data_dir_ = new std::string(*base_dir_ + "/data");
    model_path_ = new std::string(*base_dir_ + "/model.fxm");

    sim::SimProfile profile = sim::LyftLikeProfile();
    profile.world.duration_seconds = 2.0;
    profile.world.mean_object_count = 6.0;
    Fixy fixy;
    const sim::GeneratedDataset training =
        sim::GenerateDataset(profile, "ckpt_train", 3, 911);
    ASSERT_TRUE(fixy.Learn(training.dataset).ok());
    ASSERT_TRUE(fixy.SaveModel(*model_path_).ok());
    const sim::GeneratedDataset ranking =
        sim::GenerateDataset(profile, "ckpt_rank", 3, 417);
    ASSERT_TRUE(io::SaveDataset(ranking.dataset, *data_dir_).ok());

    shard::ShardOptions options = BaseOptions();
    options.checkpoint_dir = *base_dir_ + "/pristine";
    const auto reference = shard::RankDatasetSharded(
        *data_dir_, *model_path_, {"model-errors"}, options);
    ASSERT_TRUE(reference.ok()) << reference.status();
    ASSERT_EQ(reference->shards_quarantined, 0u);
    shard_count_ = reference->shards.size();
    ASSERT_GT(shard_count_, 1u);
    reference_bytes_ =
        new std::string(shard::EncodeMultiAppReport(reference->merged));
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*base_dir_);
    delete base_dir_;
    delete data_dir_;
    delete model_path_;
    delete reference_bytes_;
    base_dir_ = data_dir_ = model_path_ = reference_bytes_ = nullptr;
  }

  static shard::ShardOptions BaseOptions() {
    shard::ShardOptions options;
    options.workers = 1;
    options.scenes_per_shard = 1;
    options.worker_binary = FIXY_CLI_PATH;
    return options;
  }

  static std::string* base_dir_;
  static std::string* data_dir_;
  static std::string* model_path_;
  static std::string* reference_bytes_;
  static size_t shard_count_;
};

std::string* CheckpointFaultTest::base_dir_ = nullptr;
std::string* CheckpointFaultTest::data_dir_ = nullptr;
std::string* CheckpointFaultTest::model_path_ = nullptr;
std::string* CheckpointFaultTest::reference_bytes_ = nullptr;
size_t CheckpointFaultTest::shard_count_ = 0;

// The acceptance gate: >= 300 seeded corrupted checkpoints through the
// real coordinator resume path with zero crashes. A corrupt checkpoint
// is never trusted — its shard is re-ranked by a fresh worker — and the
// resumed merged report stays byte-identical to the uninterrupted run.
TEST_F(CheckpointFaultTest, ThreeHundredCorruptCheckpointsResumeCleanly) {
  namespace fs = std::filesystem;
  const std::string pristine = *base_dir_ + "/pristine";
  constexpr uint64_t kSeeds = 300;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    const size_t victim = static_cast<size_t>(seed) % shard_count_;
    const std::string run_dir = *base_dir_ + "/run";
    fs::remove_all(run_dir);
    fs::create_directories(run_dir);
    for (size_t s = 0; s < shard_count_; ++s) {
      fs::copy_file(shard::ShardCheckpointPath(pristine, s),
                    shard::ShardCheckpointPath(run_dir, s));
    }
    const std::string victim_path =
        shard::ShardCheckpointPath(run_dir, victim);
    std::string blob;
    ASSERT_TRUE(io::ReadFileInto(victim_path, &blob).ok());
    const fixy::testing::CorruptionResult corruption =
        corruptor.CorruptCheckpoint(blob);
    {
      std::ofstream out(victim_path, std::ios::binary | std::ios::trunc);
      out.write(corruption.document.data(),
                static_cast<std::streamsize>(corruption.document.size()));
    }

    shard::ShardOptions options = BaseOptions();
    options.checkpoint_dir = run_dir;
    options.resume = true;
    const auto resumed = shard::RankDatasetSharded(
        *data_dir_, *model_path_, {"model-errors"}, options);
    ASSERT_TRUE(resumed.ok())
        << "seed=" << seed << " mutations=[" << Describe(corruption)
        << "]: " << resumed.status();
    EXPECT_EQ(resumed->shards_quarantined, 0u) << "seed=" << seed;
    // Exactly the untouched checkpoints are reused; the corrupted one is
    // re-ranked, whatever the corruption kind.
    EXPECT_EQ(resumed->checkpoints_reused, shard_count_ - 1)
        << "seed=" << seed << " mutations=[" << Describe(corruption) << "]";
    EXPECT_FALSE(resumed->shards[victim].reused_checkpoint)
        << "seed=" << seed << " corrupt checkpoint was trusted! mutations=["
        << Describe(corruption) << "]";
    EXPECT_EQ(shard::EncodeMultiAppReport(resumed->merged),
              *reference_bytes_)
        << "seed=" << seed << " resumed report diverged, mutations=["
        << Describe(corruption) << "]";
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      FAIL() << "stopping sweep at seed " << seed;
    }
  }
}

#endif  // FIXY_CLI_PATH && unix

}  // namespace
}  // namespace fixy
