// The fault-injection harness (robustness tentpole): seeded corrupted
// .fixy documents driven through the full parse -> validate -> rank
// pipeline. The contract under test: hostile input is either rejected
// with a Status at the ingestion boundary or scored normally — never a
// crash, abort, non-finite score, or poisoned neighbour in a batch.
//
// Run under FIXY_SANITIZE=address and =thread (tools/check.sh) to turn
// latent UB on these paths into hard failures.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/engine.h"
#include "io/scene_io.h"
#include "sim/generate.h"
#include "testing/document_corruptor.h"

namespace fixy {
namespace {

// Joins a corruption history for failure messages.
std::string Describe(const testing::CorruptionResult& corruption) {
  std::string out;
  for (const std::string& m : corruption.mutations) {
    if (!out.empty()) out += ", ";
    out += m;
  }
  return out;
}

// gtest's ASSERT_* macros only work in void functions; this keeps the
// boolean return of DriveThroughPipeline while still failing loudly.
#define ASSERT_OK_OR_RETURN(result, seed, description)                 \
  do {                                                                 \
    if (!(result).ok()) {                                              \
      EXPECT_TRUE((result).ok())                                       \
          << "seed=" << (seed) << " mutations=[" << (description)      \
          << "] rank failed: " << (result).status();                   \
      return true;                                                     \
    }                                                                  \
  } while (0)

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small scenes keep 1000+ corruption rounds fast; the document still
    // exercises every schema element (frames, ego, observations, boxes).
    sim::SimProfile profile = sim::LyftLikeProfile();
    profile.world.duration_seconds = 2.0;
    profile.world.mean_object_count = 6.0;

    fixy_ = new Fixy();
    const sim::GeneratedDataset training =
        sim::GenerateDataset(profile, "fuzz_train", 3, 911);
    ASSERT_TRUE(fixy_->Learn(training.dataset).ok());

    base_documents_ = new std::vector<std::string>();
    for (int i = 0; i < 4; ++i) {
      const sim::GeneratedScene generated = sim::GenerateScene(
          profile, "fuzz_base_" + std::to_string(i), 1000 + i);
      base_documents_->push_back(io::SceneToString(generated.scene));
    }
  }

  static void TearDownTestSuite() {
    delete fixy_;
    delete base_documents_;
    fixy_ = nullptr;
    base_documents_ = nullptr;
  }

  // Runs one corrupted document through the pipeline; returns true if it
  // survived to ranking. Any crash/abort fails the whole binary; this
  // only asserts score sanity on the survivors.
  static bool DriveThroughPipeline(const std::string& document,
                                   uint64_t seed,
                                   const std::string& description) {
    Result<Scene> scene = io::SceneFromString(document);
    if (!scene.ok()) return false;  // rejected at the ingestion boundary

    const Application app = static_cast<Application>(seed % 3);
    Dataset dataset;
    dataset.scenes.push_back(*scene);
    const Result<BatchReport> report =
        fixy_->RankDataset(dataset, app, BatchOptions{1});
    ASSERT_OK_OR_RETURN(report, seed, description);
    for (const SceneOutcome& outcome : report->outcomes) {
      if (!outcome.ok()) continue;  // quarantined: also acceptable
      for (const ErrorProposal& p : outcome.proposals) {
        EXPECT_TRUE(std::isfinite(p.score))
            << "seed=" << seed << " mutations=[" << description
            << "] produced non-finite score";
      }
    }
    return true;
  }

  static Fixy* fixy_;
  static std::vector<std::string>* base_documents_;
};

Fixy* FaultInjectionTest::fixy_ = nullptr;
std::vector<std::string>* FaultInjectionTest::base_documents_ = nullptr;

// The corruptor itself is deterministic: same seed, same document, same
// mutations and output.
TEST_F(FaultInjectionTest, CorruptorIsDeterministic) {
  const std::string& doc = base_documents_->front();
  for (uint64_t seed : {0u, 1u, 42u, 977u}) {
    fixy::testing::DocumentCorruptor a(seed);
    fixy::testing::DocumentCorruptor b(seed);
    const auto ra = a.Corrupt(doc);
    const auto rb = b.Corrupt(doc);
    EXPECT_EQ(ra.document, rb.document) << "seed=" << seed;
    EXPECT_EQ(ra.mutations, rb.mutations) << "seed=" << seed;
  }
}

// The acceptance gate: >= 1000 seeded corrupted documents through
// parse -> validate -> rank with zero crashes, aborts, or non-finite
// scores. Also sanity-checks the corruptor: some documents must die at
// the parser, some must survive all the way to ranking — otherwise the
// corruptor is either too destructive or a no-op and the test would be
// vacuous.
TEST_F(FaultInjectionTest, ThousandCorruptedDocumentsNeverCrashThePipeline) {
  constexpr uint64_t kRounds = 1200;
  size_t rejected = 0;
  size_t ranked = 0;
  for (uint64_t seed = 0; seed < kRounds; ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    const std::string& base =
        (*base_documents_)[seed % base_documents_->size()];
    const fixy::testing::CorruptionResult corruption =
        corruptor.Corrupt(base);
    if (DriveThroughPipeline(corruption.document, seed,
                             Describe(corruption))) {
      ++ranked;
    } else {
      ++rejected;
    }
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal failure at seed " << seed << " mutations=["
             << Describe(corruption) << "]";
    }
  }
  EXPECT_EQ(rejected + ranked, kRounds);
  // Corruptor sanity: both outcomes must actually occur.
  EXPECT_GT(rejected, 0u) << "no corrupted document was ever rejected";
  EXPECT_GT(ranked, 0u) << "no corrupted document ever survived to rank";
}

// Every corruption kind individually, across many seeds — narrower than
// the big sweep, but failures pin directly to one mutation family.
TEST_F(FaultInjectionTest, EachCorruptionKindIsSurvivable) {
  using fixy::testing::CorruptionKind;
  const CorruptionKind kinds[] = {
      CorruptionKind::kTruncate,     CorruptionKind::kByteNoise,
      CorruptionKind::kTypeFlip,     CorruptionKind::kFieldDrop,
      CorruptionKind::kNumberInjection, CorruptionKind::kDuplicateId,
  };
  for (const CorruptionKind kind : kinds) {
    for (uint64_t seed = 0; seed < 40; ++seed) {
      fixy::testing::DocumentCorruptor corruptor(seed);
      std::string detail;
      const std::string mutated = corruptor.Apply(
          kind, base_documents_->front(), &detail);
      DriveThroughPipeline(mutated, seed,
                           std::string(ToString(kind)) + ": " + detail);
    }
  }
}

// Batch poisoning, fuzz edition: corrupted documents that survive parsing
// share a batch with a clean scene; the clean scene's proposals must be
// byte-identical to ranking it alone, for serial and parallel runs.
TEST_F(FaultInjectionTest, SurvivingCorruptScenesNeverPoisonCleanScene) {
  sim::SimProfile profile = sim::LyftLikeProfile();
  profile.world.duration_seconds = 2.0;
  profile.world.mean_object_count = 6.0;
  const sim::GeneratedScene clean =
      sim::GenerateScene(profile, "fuzz_clean", 4242);

  // Reference: the clean scene ranked alone.
  Dataset solo;
  solo.scenes.push_back(clean.scene);
  const auto reference =
      fixy_->RankDataset(solo, Application::kMissingTracks, BatchOptions{1});
  ASSERT_TRUE(reference.ok());

  // Collect survivors until the batch has a few hostile neighbours.
  Dataset mixed;
  for (uint64_t seed = 5000; seed < 5400 && mixed.scenes.size() < 6;
       ++seed) {
    fixy::testing::DocumentCorruptor corruptor(seed);
    const fixy::testing::CorruptionResult corruption = corruptor.Corrupt(
        (*base_documents_)[seed % base_documents_->size()]);
    Result<Scene> scene = io::SceneFromString(corruption.document);
    if (!scene.ok()) continue;
    scene->set_name("hostile_" + std::to_string(seed));
    mixed.scenes.push_back(std::move(*scene));
  }
  ASSERT_FALSE(mixed.scenes.empty())
      << "no corrupted document survived parsing; corruptor too destructive";
  mixed.scenes.push_back(clean.scene);
  const size_t clean_index = mixed.scenes.size() - 1;

  for (const int threads : {1, 4}) {
    const auto result = fixy_->RankDataset(
        mixed, Application::kMissingTracks, BatchOptions{threads});
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    const SceneOutcome& outcome = result->outcomes[clean_index];
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.proposals.size(),
              reference->outcomes[0].proposals.size());
    for (size_t i = 0; i < outcome.proposals.size(); ++i) {
      EXPECT_EQ(outcome.proposals[i].score,
                reference->outcomes[0].proposals[i].score);
      EXPECT_EQ(outcome.proposals[i].track_id,
                reference->outcomes[0].proposals[i].track_id);
    }
  }
}

#undef ASSERT_OK_OR_RETURN

}  // namespace
}  // namespace fixy
