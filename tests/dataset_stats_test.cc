// Tests for src/eval/dataset_stats.
#include <gtest/gtest.h>

#include "eval/dataset_stats.h"
#include "sim/generate.h"
#include "sim/object_priors.h"

namespace fixy::eval {
namespace {

TEST(DatasetStatsTest, EmptyDataset) {
  const auto stats = ComputeDatasetStats(Dataset{});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->scenes, 0u);
  EXPECT_EQ(stats->frames, 0u);
  EXPECT_EQ(stats->by_source[0], 0u);
}

TEST(DatasetStatsTest, CountsMatchDataset) {
  const auto generated =
      sim::GenerateDataset(sim::LyftLikeProfile(), "stats", 2, 99);
  const auto stats = ComputeDatasetStats(generated.dataset);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->scenes, 2u);
  size_t human = 0;
  size_t model = 0;
  size_t frames = 0;
  for (const Scene& scene : generated.dataset.scenes) {
    human += scene.CountBySource(ObservationSource::kHuman);
    model += scene.CountBySource(ObservationSource::kModel);
    frames += scene.frame_count();
  }
  EXPECT_EQ(stats->by_source[0], human);
  EXPECT_EQ(stats->by_source[1], model);
  EXPECT_EQ(stats->frames, frames);
  size_t class_total = 0;
  for (const ClassStats& cs : stats->human_by_class) {
    class_total += cs.observations;
  }
  EXPECT_EQ(class_total, human);
}

TEST(DatasetStatsTest, VolumesMatchClassPriors) {
  const auto generated =
      sim::GenerateDataset(sim::LyftLikeProfile(), "stats", 3, 7);
  const auto stats = ComputeDatasetStats(generated.dataset);
  ASSERT_TRUE(stats.ok());
  const ClassStats& cars =
      stats->human_by_class[static_cast<size_t>(ObjectClass::kCar)];
  const ClassStats& trucks =
      stats->human_by_class[static_cast<size_t>(ObjectClass::kTruck)];
  const ClassStats& pedestrians =
      stats->human_by_class[static_cast<size_t>(ObjectClass::kPedestrian)];
  ASSERT_GT(cars.observations, 10u);
  ASSERT_GT(trucks.observations, 10u);
  // Volume ordering: pedestrian << car << truck.
  EXPECT_LT(pedestrians.volume.median, cars.volume.median);
  EXPECT_LT(cars.volume.median, trucks.volume.median);
  // Car volume median in a plausible range around the prior (4.76 x 1.93
  // x 1.72 ~ 15.8 m^3).
  EXPECT_NEAR(cars.volume.median, 15.8, 4.0);
}

TEST(DatasetStatsTest, SpeedsAreNonNegativeAndPlausible) {
  const auto generated =
      sim::GenerateDataset(sim::InternalLikeProfile(), "stats", 2, 31);
  const auto stats = ComputeDatasetStats(generated.dataset);
  ASSERT_TRUE(stats.ok());
  for (const ClassStats& cs : stats->human_by_class) {
    EXPECT_GE(cs.speed.min, 0.0);
    EXPECT_LT(cs.speed.max, 40.0);  // nothing supersonic
  }
  // Pedestrians are slower than cars at the median-of-motion level.
  const auto& cars =
      stats->human_by_class[static_cast<size_t>(ObjectClass::kCar)];
  const auto& peds =
      stats->human_by_class[static_cast<size_t>(ObjectClass::kPedestrian)];
  if (cars.speed.count > 20 && peds.speed.count > 20) {
    EXPECT_LT(peds.speed.max, cars.speed.max);
  }
}

TEST(DatasetStatsTest, FormatMentionsEveryClass) {
  const auto generated =
      sim::GenerateDataset(sim::LyftLikeProfile(), "stats", 1, 5);
  const auto stats = ComputeDatasetStats(generated.dataset);
  ASSERT_TRUE(stats.ok());
  const std::string text = FormatDatasetStats(*stats);
  for (ObjectClass cls : kAllObjectClasses) {
    EXPECT_NE(text.find(ObjectClassToString(cls)), std::string::npos);
  }
  EXPECT_NE(text.find("human="), std::string::npos);
}

TEST(DatasetStatsTest, RejectsInvalidScene) {
  Dataset dataset;
  Scene broken("broken", 10.0);
  Frame frame;
  frame.index = 7;
  broken.AddFrame(std::move(frame));
  dataset.scenes.push_back(std::move(broken));
  EXPECT_FALSE(ComputeDatasetStats(dataset).ok());
}

}  // namespace
}  // namespace fixy::eval
